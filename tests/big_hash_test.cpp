#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "backends/middle_region_device.h"
#include "cache/big_hash.h"
#include "cache/hybrid_cache.h"
#include "common/random.h"

namespace zncache::cache {
namespace {

class BigHashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    blockssd::BlockSsdConfig sc;
    sc.logical_capacity = 4 * kMiB;
    sc.op_ratio = 0.2;
    sc.pages_per_block = 64;
    clock_ = std::make_unique<sim::VirtualClock>();
    ssd_ = std::make_unique<blockssd::BlockSsd>(sc, clock_.get());
    BigHashConfig bc;
    bc.bucket_count = 1024;  // 4 MiB of buckets
    hash_ = std::make_unique<BigHash>(bc, ssd_.get(), 0, clock_.get());
  }

  std::unique_ptr<sim::VirtualClock> clock_;
  std::unique_ptr<blockssd::BlockSsd> ssd_;
  std::unique_ptr<BigHash> hash_;
};

TEST_F(BigHashTest, MissOnEmpty) {
  auto g = hash_->Get("nothing");
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(g->hit);
  // Bloom/never-written short-circuits without touching flash.
  EXPECT_EQ(hash_->stats().bloom_skips, 1u);
  EXPECT_EQ(ssd_->stats().read_ops, 0u);
}

TEST_F(BigHashTest, SetGetRoundTrip) {
  ASSERT_TRUE(hash_->Set("k1", "small-value").ok());
  std::string v;
  auto g = hash_->Get("k1", &v);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->hit);
  EXPECT_EQ(v, "small-value");
}

TEST_F(BigHashTest, OverwriteKeepsLatest) {
  ASSERT_TRUE(hash_->Set("k", "v1").ok());
  ASSERT_TRUE(hash_->Set("k", "v2").ok());
  std::string v;
  ASSERT_TRUE(hash_->Get("k", &v).ok());
  EXPECT_EQ(v, "v2");
}

TEST_F(BigHashTest, DeleteRemoves) {
  ASSERT_TRUE(hash_->Set("k", "v").ok());
  auto d = hash_->Delete("k");
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->hit);
  EXPECT_FALSE(hash_->Get("k")->hit);
}

TEST_F(BigHashTest, OversizedItemRejected) {
  const std::string big(5 * kKiB, 'x');
  EXPECT_FALSE(hash_->Set("big", big).ok());
  EXPECT_EQ(hash_->stats().rejected_sets, 1u);
}

TEST_F(BigHashTest, BucketFifoEviction) {
  // Stuff one logical bucket far past capacity: oldest items must go.
  // Different keys usually map to different buckets, so use many keys and
  // verify global behaviour instead: with 1024 buckets of 4 KiB and 200-
  // byte items, ~20 items fit per bucket.
  const std::string value(400, 'v');
  for (int i = 0; i < 30'000; ++i) {
    ASSERT_TRUE(hash_->Set("key-" + std::to_string(i), value).ok());
  }
  EXPECT_GT(hash_->stats().bucket_evictions, 0u);
  // Recent keys present, earliest keys (their buckets overflowed) gone.
  int early_hits = 0, late_hits = 0;
  for (int i = 0; i < 1000; ++i) {
    if (hash_->Get("key-" + std::to_string(i))->hit) early_hits++;
    if (hash_->Get("key-" + std::to_string(29'000 + i))->hit) late_hits++;
  }
  EXPECT_GT(late_hits, 950);
  EXPECT_LT(early_hits, late_hits);
}

TEST_F(BigHashTest, MatchesReferenceMap) {
  Rng rng(88);
  std::map<std::string, std::string> truth;
  for (int i = 0; i < 5000; ++i) {
    const std::string key = "k" + std::to_string(rng.Uniform(800));
    if (rng.Chance(0.2)) {
      ASSERT_TRUE(hash_->Delete(key).ok());
      truth.erase(key);
    } else {
      const std::string value = "v" + std::to_string(i);
      ASSERT_TRUE(hash_->Set(key, value).ok());
      truth[key] = value;
    }
  }
  // 800 keys spread over 1024 buckets: evictions are rare, so nearly all
  // reference entries must be present and correct.
  std::string v;
  u64 matches = 0;
  for (const auto& [key, value] : truth) {
    auto g = hash_->Get(key, &v);
    ASSERT_TRUE(g.ok());
    if (g->hit) {
      EXPECT_EQ(v, value) << key;
      matches++;
    }
  }
  EXPECT_GT(matches, truth.size() * 9 / 10);
}

TEST_F(BigHashTest, BloomSkipsAbsentKeys) {
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(hash_->Set("present-" + std::to_string(i), "v").ok());
  }
  const u64 reads_before = ssd_->stats().read_ops;
  u64 skips_before = hash_->stats().bloom_skips;
  for (int i = 0; i < 1000; ++i) {
    (void)hash_->Get("absent-" + std::to_string(i));
  }
  // Most absent gets never reach the device.
  EXPECT_GT(hash_->stats().bloom_skips - skips_before, 700u);
  EXPECT_LT(ssd_->stats().read_ops - reads_before, 300u);
}

// ------------------------------------------------------------- hybrid ----

TEST(HybridCacheTest, RoutesBySizeAndStaysConsistent) {
  sim::VirtualClock clock;
  blockssd::BlockSsdConfig sc;
  sc.logical_capacity = 4 * kMiB;
  sc.pages_per_block = 64;
  blockssd::BlockSsd ssd(sc, &clock);
  BigHashConfig bc;
  bc.bucket_count = 1024;
  BigHash small(bc, &ssd, 0, &clock);

  backends::MiddleRegionDeviceConfig dc;
  dc.region_count = 24;
  dc.zns.zone_count = 12;
  dc.zns.zone_size = 256 * kKiB;
  dc.zns.zone_capacity = 256 * kKiB;
  dc.middle.region_size = 64 * kKiB;
  dc.middle.min_empty_zones = 2;
  backends::MiddleRegionDevice device(dc, &clock);
  ASSERT_TRUE(device.Init().ok());
  FlashCacheConfig fc;
  fc.store_values = true;
  FlashCache large(fc, &device, &clock);

  HybridCacheConfig hc;
  hc.small_item_threshold = 1 * kKiB;
  HybridCache hybrid(hc, &small, &large);

  // Small item routes to BigHash, large to the region engine.
  ASSERT_TRUE(hybrid.Set("tiny", std::string(100, 't')).ok());
  ASSERT_TRUE(hybrid.Set("big", std::string(8 * kKiB, 'b')).ok());
  EXPECT_EQ(hybrid.stats().small_routed, 1u);
  EXPECT_EQ(hybrid.stats().large_routed, 1u);
  EXPECT_TRUE(small.Get("tiny")->hit);
  EXPECT_TRUE(large.Get("big")->hit);

  // Unified Get finds both.
  std::string v;
  EXPECT_TRUE(hybrid.Get("tiny", &v)->hit);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_TRUE(hybrid.Get("big", &v)->hit);
  EXPECT_EQ(v.size(), 8 * kKiB);

  // A key that changes size classes does not leave a stale twin behind.
  ASSERT_TRUE(hybrid.Set("morph", std::string(100, '1')).ok());
  ASSERT_TRUE(hybrid.Set("morph", std::string(8 * kKiB, '2')).ok());
  ASSERT_TRUE(hybrid.Get("morph", &v)->hit);
  EXPECT_EQ(v[0], '2');
  EXPECT_FALSE(small.Get("morph")->hit);

  // Unified delete clears whichever engine holds the key.
  ASSERT_TRUE(hybrid.Delete("morph")->hit);
  EXPECT_FALSE(hybrid.Get("morph")->hit);
  ASSERT_TRUE(hybrid.Delete("tiny")->hit);
  EXPECT_FALSE(hybrid.Get("tiny")->hit);
}

TEST(HybridCacheTest, SmallItemChurnStaysOnBigHash) {
  sim::VirtualClock clock;
  blockssd::BlockSsdConfig sc;
  sc.logical_capacity = 4 * kMiB;
  sc.pages_per_block = 64;
  blockssd::BlockSsd ssd(sc, &clock);
  BigHashConfig bc;
  bc.bucket_count = 1024;
  BigHash small(bc, &ssd, 0, &clock);

  backends::MiddleRegionDeviceConfig dc;
  dc.region_count = 24;
  dc.zns.zone_count = 12;
  dc.zns.zone_size = 256 * kKiB;
  dc.zns.zone_capacity = 256 * kKiB;
  dc.middle.region_size = 64 * kKiB;
  dc.middle.min_empty_zones = 2;
  backends::MiddleRegionDevice device(dc, &clock);
  ASSERT_TRUE(device.Init().ok());
  FlashCacheConfig fc;
  fc.store_values = true;
  FlashCache large(fc, &device, &clock);

  HybridCache hybrid(HybridCacheConfig{}, &small, &large);
  Rng rng(89);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(hybrid
                    .Set("s" + std::to_string(rng.Uniform(500)),
                         std::string(64 + rng.Uniform(512), 'x'))
                    .ok());
  }
  EXPECT_EQ(hybrid.stats().large_routed, 0u);
  EXPECT_EQ(large.stats().sets, 0u);
  EXPECT_GT(small.stats().sets, 0u);
}

}  // namespace
}  // namespace zncache::cache
