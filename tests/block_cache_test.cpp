#include <gtest/gtest.h>

#include <map>
#include <string>

#include "kv/block_cache.h"

namespace zncache::kv {
namespace {

// In-memory secondary cache double for unit-testing the tiering logic.
class FakeSecondary : public SecondaryCache {
 public:
  void Insert(std::string_view key, std::span<const std::byte> block) override {
    store_[std::string(key)] =
        std::string(reinterpret_cast<const char*>(block.data()), block.size());
    inserts++;
  }
  bool Lookup(std::string_view key, std::string* out) override {
    lookups++;
    auto it = store_.find(std::string(key));
    if (it == store_.end()) return false;
    *out = it->second;
    hits++;
    return true;
  }
  std::map<std::string, std::string> store_;
  int inserts = 0, lookups = 0, hits = 0;
};

class BlockCacheTest : public ::testing::Test {
 protected:
  BlockCacheConfig Config(u64 bytes = 1000) {
    BlockCacheConfig c;
    c.capacity_bytes = bytes;
    return c;
  }

  sim::VirtualClock clock_;
};

TEST_F(BlockCacheTest, MissOnEmpty) {
  BlockCache c(Config(), &clock_);
  std::string v;
  EXPECT_FALSE(c.Lookup("k", &v));
}

TEST_F(BlockCacheTest, InsertThenHit) {
  BlockCache c(Config(), &clock_);
  c.Insert("k", "value");
  std::string v;
  ASSERT_TRUE(c.Lookup("k", &v));
  EXPECT_EQ(v, "value");
  EXPECT_EQ(c.stats().dram_hits, 1u);
}

TEST_F(BlockCacheTest, CapacityEnforced) {
  BlockCache c(Config(100), &clock_);
  c.Insert("a", std::string(60, 'x'));
  c.Insert("b", std::string(60, 'y'));
  EXPECT_LE(c.used_bytes(), 100u);
  std::string v;
  EXPECT_FALSE(c.Lookup("a", &v));  // evicted
  EXPECT_TRUE(c.Lookup("b", &v));
}

TEST_F(BlockCacheTest, LruOrderRespected) {
  BlockCache c(Config(150), &clock_);
  c.Insert("a", std::string(60, 'a'));
  c.Insert("b", std::string(60, 'b'));
  std::string v;
  ASSERT_TRUE(c.Lookup("a", &v));  // touch a -> b is now LRU
  c.Insert("c", std::string(60, 'c'));
  EXPECT_TRUE(c.Lookup("a", &v));
  EXPECT_FALSE(c.Lookup("b", &v));
}

TEST_F(BlockCacheTest, ReinsertUpdatesValueAndSize) {
  BlockCache c(Config(1000), &clock_);
  c.Insert("k", std::string(100, '1'));
  c.Insert("k", std::string(50, '2'));
  std::string v;
  ASSERT_TRUE(c.Lookup("k", &v));
  EXPECT_EQ(v, std::string(50, '2'));
  EXPECT_EQ(c.used_bytes(), 1 + 50u);
}

TEST_F(BlockCacheTest, EvictionSpillsToSecondary) {
  FakeSecondary sec;
  BlockCache c(Config(100), &clock_, &sec);
  c.Insert("a", std::string(60, 'a'));
  c.Insert("b", std::string(60, 'b'));
  EXPECT_EQ(sec.inserts, 1);
  EXPECT_TRUE(sec.store_.count("a"));
  EXPECT_EQ(c.stats().spills, 1u);
}

TEST_F(BlockCacheTest, SecondaryHitPromotes) {
  FakeSecondary sec;
  sec.store_["k"] = "from-flash";
  BlockCache c(Config(1000), &clock_, &sec);
  std::string v;
  ASSERT_TRUE(c.Lookup("k", &v));
  EXPECT_EQ(v, "from-flash");
  EXPECT_EQ(c.stats().secondary_hits, 1u);
  // Second lookup is a DRAM hit (promoted).
  ASSERT_TRUE(c.Lookup("k", &v));
  EXPECT_EQ(c.stats().dram_hits, 1u);
}

TEST_F(BlockCacheTest, BothTiersMiss) {
  FakeSecondary sec;
  BlockCache c(Config(1000), &clock_, &sec);
  std::string v;
  EXPECT_FALSE(c.Lookup("nope", &v));
  EXPECT_EQ(sec.lookups, 1);
  EXPECT_EQ(sec.hits, 0);
}

TEST_F(BlockCacheTest, LookupAdvancesClock) {
  BlockCache c(Config(), &clock_);
  std::string v;
  (void)c.Lookup("k", &v);
  EXPECT_GT(clock_.Now(), 0u);
}

}  // namespace
}  // namespace zncache::kv
