#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "blockssd/block_ssd.h"
#include "common/random.h"

namespace zncache::blockssd {
namespace {

std::vector<std::byte> Bytes(size_t n, char fill = 'b') {
  return std::vector<std::byte>(n, std::byte(fill));
}

BlockSsdConfig SmallConfig() {
  BlockSsdConfig c;
  c.logical_capacity = 4 * kMiB;
  c.op_ratio = 0.25;
  c.page_size = 4 * kKiB;
  c.pages_per_block = 16;  // 64 KiB erase blocks
  return c;
}

class BlockSsdTest : public ::testing::Test {
 protected:
  sim::VirtualClock clock_;
  BlockSsd dev_{SmallConfig(), &clock_};
};

TEST_F(BlockSsdTest, ReadBackMatches) {
  std::vector<std::byte> data(8192);
  for (size_t i = 0; i < data.size(); ++i) data[i] = std::byte(i % 253);
  ASSERT_TRUE(dev_.Write(0, data).ok());
  std::vector<std::byte> out(8192);
  ASSERT_TRUE(dev_.Read(0, out).ok());
  EXPECT_EQ(std::memcmp(data.data(), out.data(), data.size()), 0);
}

TEST_F(BlockSsdTest, UnalignedReadWrite) {
  std::vector<std::byte> data(1000, std::byte{0x7});
  ASSERT_TRUE(dev_.Write(12345, data).ok());
  std::vector<std::byte> out(1000);
  ASSERT_TRUE(dev_.Read(12345, out).ok());
  EXPECT_EQ(std::memcmp(data.data(), out.data(), 1000), 0);
}

TEST_F(BlockSsdTest, OverwriteReplacesData) {
  ASSERT_TRUE(dev_.Write(0, Bytes(4096, 'x')).ok());
  ASSERT_TRUE(dev_.Write(0, Bytes(4096, 'y')).ok());
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(dev_.Read(0, out).ok());
  EXPECT_EQ(out[0], std::byte('y'));
}

TEST_F(BlockSsdTest, BoundsChecked) {
  EXPECT_FALSE(dev_.Write(dev_.logical_capacity(), Bytes(1)).ok());
  std::vector<std::byte> out(1);
  EXPECT_FALSE(dev_.Read(dev_.logical_capacity(), out).ok());
  EXPECT_FALSE(dev_.Write(dev_.logical_capacity() - 1, Bytes(2)).ok());
}

TEST_F(BlockSsdTest, EmptyIoRejected) {
  EXPECT_FALSE(dev_.Write(0, {}).ok());
  EXPECT_FALSE(dev_.Read(0, std::span<std::byte>()).ok());
}

TEST_F(BlockSsdTest, FreshWritesHaveUnitWa) {
  // Filling the device once (no overwrites) should not trigger GC.
  const u64 cap = dev_.logical_capacity();
  for (u64 off = 0; off < cap; off += kMiB) {
    ASSERT_TRUE(dev_.Write(off, Bytes(kMiB)).ok());
  }
  EXPECT_DOUBLE_EQ(dev_.stats().WriteAmplification(), 1.0);
  EXPECT_EQ(dev_.stats().gc_runs, 0u);
}

TEST_F(BlockSsdTest, OverwriteChurnTriggersGc) {
  const u64 cap = dev_.logical_capacity();
  // Fill, then keep overwriting random-ish offsets to force GC.
  for (u64 off = 0; off < cap; off += kMiB) {
    ASSERT_TRUE(dev_.Write(off, Bytes(kMiB)).ok());
  }
  Rng rng(3);
  for (int i = 0; i < 3000; ++i) {
    // 4 KiB page-granular overwrites leave erase blocks partially valid,
    // which is what forces GC to migrate pages.
    const u64 off = rng.Uniform(cap / (4 * kKiB)) * 4 * kKiB;
    ASSERT_TRUE(dev_.Write(off, Bytes(4 * kKiB)).ok());
  }
  EXPECT_GT(dev_.stats().gc_runs, 0u);
  EXPECT_GT(dev_.stats().WriteAmplification(), 1.0);
}

TEST_F(BlockSsdTest, GcNeverLosesData) {
  const u64 cap = dev_.logical_capacity();
  const u64 stripe = 64 * kKiB;
  const u64 stripes = cap / stripe;
  std::vector<u8> stamp(stripes, 0);
  // Initial fill.
  for (u64 s = 0; s < stripes; ++s) {
    ASSERT_TRUE(dev_.Write(s * stripe, Bytes(stripe, char('A' + s % 26))).ok());
    stamp[s] = static_cast<u8>('A' + s % 26);
  }
  // Heavy overwrite churn.
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    const u64 s = rng.Uniform(stripes);
    const char fill = static_cast<char>('a' + (i % 26));
    ASSERT_TRUE(dev_.Write(s * stripe, Bytes(stripe, fill)).ok());
    stamp[s] = static_cast<u8>(fill);
  }
  // Every stripe must read back its latest value.
  std::vector<std::byte> out(stripe);
  for (u64 s = 0; s < stripes; ++s) {
    ASSERT_TRUE(dev_.Read(s * stripe, out).ok());
    EXPECT_EQ(out[0], std::byte(stamp[s])) << "stripe " << s;
    EXPECT_EQ(out[stripe - 1], std::byte(stamp[s]));
  }
}

TEST_F(BlockSsdTest, MoreOpLowersWa) {
  auto churn = [](double op_ratio) {
    BlockSsdConfig c = SmallConfig();
    c.op_ratio = op_ratio;
    sim::VirtualClock clk;
    BlockSsd d(c, &clk);
    const u64 cap = d.logical_capacity();
    for (u64 off = 0; off < cap; off += kMiB) {
      (void)d.Write(off, Bytes(kMiB));
    }
    Rng rng(5);
    for (int i = 0; i < 4000; ++i) {
      const u64 off = rng.Uniform(cap / (4 * kKiB)) * 4 * kKiB;
      (void)d.Write(off, Bytes(4 * kKiB));
    }
    return d.stats().WriteAmplification();
  };
  const double wa_low_op = churn(0.10);
  const double wa_high_op = churn(0.40);
  EXPECT_GT(wa_low_op, wa_high_op);
}

TEST_F(BlockSsdTest, GcProducesReadTailLatency) {
  // GC occupancy is drip-fed to the read path: after overwrite churn has
  // forced collection, some reads queue behind GC chunks and observe far
  // higher latency than the clean-device read.
  const u64 cap = dev_.logical_capacity();
  for (u64 off = 0; off < cap; off += kMiB) {
    ASSERT_TRUE(dev_.Write(off, Bytes(kMiB)).ok());
  }
  SimNanos max_latency = 0;
  SimNanos min_latency = ~0ULL;
  Rng rng(6);
  std::vector<std::byte> out(4 * kKiB);
  for (int i = 0; i < 1000; ++i) {
    const u64 woff = rng.Uniform(cap / (4 * kKiB)) * 4 * kKiB;
    ASSERT_TRUE(dev_.Write(woff, Bytes(4 * kKiB)).ok());
    auto r = dev_.Read(rng.Uniform(cap / 4096) * 4096, out);
    ASSERT_TRUE(r.ok());
    max_latency = std::max(max_latency, r->latency);
    min_latency = std::min(min_latency, r->latency);
  }
  EXPECT_GT(dev_.stats().gc_runs, 0u);
  EXPECT_GT(max_latency, min_latency * 3);
}

TEST_F(BlockSsdTest, TrimReducesGcWork) {
  const u64 cap = dev_.logical_capacity();
  for (u64 off = 0; off < cap; off += kMiB) {
    ASSERT_TRUE(dev_.Write(off, Bytes(kMiB)).ok());
  }
  // Trim half the space, then churn the other half: WA should stay modest
  // compared to churning with no trim (more invalid pages to collect).
  ASSERT_TRUE(dev_.Trim(0, cap / 2).ok());
  Rng rng(8);
  for (int i = 0; i < 300; ++i) {
    const u64 off =
        cap / 2 + rng.Uniform(cap / 2 / (64 * kKiB)) * 64 * kKiB;
    ASSERT_TRUE(dev_.Write(off, Bytes(64 * kKiB)).ok());
  }
  EXPECT_LT(dev_.stats().WriteAmplification(), 1.5);
}

TEST_F(BlockSsdTest, TrimBoundsChecked) {
  EXPECT_FALSE(dev_.Trim(0, dev_.logical_capacity() + 1).ok());
  EXPECT_TRUE(dev_.Trim(0, 0).ok());
}

TEST_F(BlockSsdTest, StatsCountOps) {
  ASSERT_TRUE(dev_.Write(0, Bytes(100)).ok());
  std::vector<std::byte> out(100);
  ASSERT_TRUE(dev_.Read(0, out).ok());
  EXPECT_EQ(dev_.stats().write_ops, 1u);
  EXPECT_EQ(dev_.stats().read_ops, 1u);
  EXPECT_EQ(dev_.stats().host_bytes_written, 100u);
}

TEST_F(BlockSsdTest, BackgroundModeSkipsClientWait) {
  auto r = dev_.Write(0, Bytes(4096), sim::IoMode::kBackground);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->latency, 0u);
  EXPECT_EQ(clock_.Now(), 0u);
}

TEST_F(BlockSsdTest, NoStoreDataMode) {
  BlockSsdConfig c = SmallConfig();
  c.store_data = false;
  sim::VirtualClock clk;
  BlockSsd d(c, &clk);
  ASSERT_TRUE(d.Write(0, Bytes(4096, 'z')).ok());
  std::vector<std::byte> out(4096, std::byte{0xAB});
  ASSERT_TRUE(d.Read(0, out).ok());
  EXPECT_EQ(out[0], std::byte{0});
}

}  // namespace
}  // namespace zncache::blockssd
