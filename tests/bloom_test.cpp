#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "kv/bloom.h"
#include "kv/lsm_store.h"

namespace zncache::kv {
namespace {

TEST(Bloom, EmptyFilterMatchesEverything) {
  EXPECT_TRUE(BloomMayContain({}, "anything"));
}

TEST(Bloom, NoFalseNegatives) {
  BloomBuilder b(10);
  for (int i = 0; i < 5000; ++i) b.AddKey("key-" + std::to_string(i));
  const auto filter = b.Finish();
  for (int i = 0; i < 5000; ++i) {
    EXPECT_TRUE(BloomMayContain(filter, "key-" + std::to_string(i))) << i;
  }
}

TEST(Bloom, FalsePositiveRateReasonable) {
  BloomBuilder b(10);
  for (int i = 0; i < 10'000; ++i) b.AddKey("key-" + std::to_string(i));
  const auto filter = b.Finish();
  int false_positives = 0;
  const int probes = 20'000;
  for (int i = 0; i < probes; ++i) {
    if (BloomMayContain(filter, "absent-" + std::to_string(i))) {
      false_positives++;
    }
  }
  // 10 bits/key targets ~1%; allow generous slack.
  EXPECT_LT(static_cast<double>(false_positives) / probes, 0.05);
}

TEST(Bloom, MoreBitsFewerFalsePositives) {
  auto fp_rate = [](u32 bits_per_key) {
    BloomBuilder b(bits_per_key);
    for (int i = 0; i < 5000; ++i) b.AddKey("key-" + std::to_string(i));
    const auto filter = b.Finish();
    int fp = 0;
    for (int i = 0; i < 10'000; ++i) {
      if (BloomMayContain(filter, "no-" + std::to_string(i))) fp++;
    }
    return fp;
  };
  EXPECT_LT(fp_rate(12), fp_rate(4));
}

TEST(Bloom, SingleKeyFilter) {
  BloomBuilder b(10);
  b.AddKey("only");
  const auto filter = b.Finish();
  EXPECT_TRUE(BloomMayContain(filter, "only"));
  int fp = 0;
  for (int i = 0; i < 1000; ++i) {
    if (BloomMayContain(filter, "x" + std::to_string(i))) fp++;
  }
  EXPECT_LT(fp, 100);
}

TEST(Bloom, LsmSkipsTablesOnNegativeLookups) {
  sim::VirtualClock clock;
  hdd::HddConfig hc;
  hc.capacity = 128 * kMiB;
  hdd::HddDevice hdd(hc, &clock);
  LsmConfig c;
  c.memtable_bytes = 16 * kKiB;
  c.block_bytes = 1 * kKiB;
  c.bloom_bits_per_key = 10;
  LsmStore store(c, &hdd, &clock);

  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(store.Put("key-" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(store.Flush().ok());

  std::string v;
  for (int i = 0; i < 500; ++i) {
    // Absent keys inside the table key range, so only the filter can skip.
    auto g = store.Get("key-" + std::to_string(i) + "-absent", &v);
    ASSERT_TRUE(g.ok());
    EXPECT_FALSE(g->found);
  }
  EXPECT_GT(store.stats().bloom_skips, 0u);

  // Positive lookups are unaffected.
  auto g = store.Get("key-77", &v);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->found);
}

TEST(Bloom, DisabledFilterDoesNotSkip) {
  sim::VirtualClock clock;
  hdd::HddConfig hc;
  hc.capacity = 128 * kMiB;
  hdd::HddDevice hdd(hc, &clock);
  LsmConfig c;
  c.memtable_bytes = 16 * kKiB;
  c.bloom_bits_per_key = 0;
  LsmStore store(c, &hdd, &clock);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(store.Put("key-" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(store.Flush().ok());
  std::string v;
  (void)store.Get("missing", &v);
  EXPECT_EQ(store.stats().bloom_skips, 0u);
}

}  // namespace
}  // namespace zncache::kv
