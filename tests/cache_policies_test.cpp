// Reinsertion and admission policies (CacheLib-style engine features).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "backends/middle_region_device.h"
#include "cache/flash_cache.h"
#include "common/random.h"

namespace zncache::cache {
namespace {

constexpr u64 kRegion = 64 * kKiB;

class CachePoliciesTest : public ::testing::Test {
 protected:
  void Make(FlashCacheConfig cfg) {
    clock_ = std::make_unique<sim::VirtualClock>();
    backends::MiddleRegionDeviceConfig dc;
    dc.region_count = 24;
    dc.zns.zone_count = 12;
    dc.zns.zone_size = 256 * kKiB;
    dc.zns.zone_capacity = 256 * kKiB;
    dc.zns.max_open_zones = 6;
    dc.zns.max_active_zones = 8;
    dc.middle.region_size = kRegion;
    dc.middle.open_zones = 2;
    dc.middle.min_empty_zones = 2;
    device_ =
        std::make_unique<backends::MiddleRegionDevice>(dc, clock_.get());
    ASSERT_TRUE(device_->Init().ok());
    cfg.store_values = true;
    cache_ = std::make_unique<FlashCache>(cfg, device_.get(), clock_.get());
  }

  std::string Val(size_t n, char c = 'v') { return std::string(n, c); }

  std::unique_ptr<sim::VirtualClock> clock_;
  std::unique_ptr<backends::MiddleRegionDevice> device_;
  std::unique_ptr<FlashCache> cache_;
};

TEST_F(CachePoliciesTest, ReinsertionKeepsHotItemAlive) {
  FlashCacheConfig cfg;
  cfg.policy = EvictionPolicy::kFifo;
  cfg.reinsertion_hits = 2;
  Make(cfg);

  ASSERT_TRUE(cache_->Set("hot", Val(30 * kKiB, 'H')).ok());
  // Heat it up well past the threshold.
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(cache_->Get("hot").ok());

  // Flood with several full cache generations of cold data.
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(cache_->Set("cold-" + std::to_string(i), Val(30 * kKiB)).ok());
    // Keep "hot" hot so each reinserted copy re-qualifies.
    (void)cache_->Get("hot");
  }
  EXPECT_GT(cache_->stats().reinserted_items, 0u);
  std::string v;
  auto g = cache_->Get("hot", &v);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->hit);
  EXPECT_EQ(v[0], 'H');
}

TEST_F(CachePoliciesTest, ColdItemsNotReinserted) {
  FlashCacheConfig cfg;
  cfg.policy = EvictionPolicy::kFifo;
  cfg.reinsertion_hits = 2;
  Make(cfg);
  ASSERT_TRUE(cache_->Set("cold", Val(30 * kKiB)).ok());
  (void)cache_->Get("cold");  // one hit: below the threshold
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(cache_->Set("f" + std::to_string(i), Val(30 * kKiB)).ok());
  }
  EXPECT_FALSE(cache_->Get("cold")->hit);
}

TEST_F(CachePoliciesTest, ReinsertionDisabledByDefault) {
  FlashCacheConfig cfg;
  cfg.policy = EvictionPolicy::kFifo;
  Make(cfg);
  ASSERT_TRUE(cache_->Set("hot", Val(30 * kKiB)).ok());
  for (int i = 0; i < 10; ++i) (void)cache_->Get("hot");
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(cache_->Set("f" + std::to_string(i), Val(30 * kKiB)).ok());
  }
  EXPECT_EQ(cache_->stats().reinserted_items, 0u);
  EXPECT_FALSE(cache_->Get("hot")->hit);
}

TEST_F(CachePoliciesTest, ReinsertedValueSurvivesIntact) {
  FlashCacheConfig cfg;
  cfg.policy = EvictionPolicy::kFifo;
  cfg.reinsertion_hits = 1;
  Make(cfg);
  std::string payload(20 * kKiB, 'x');
  for (size_t i = 0; i < payload.size(); i += 1000) {
    payload[i] = static_cast<char>('A' + (i / 1000) % 26);
  }
  ASSERT_TRUE(cache_->Set("k", payload).ok());
  for (int i = 0; i < 5; ++i) (void)cache_->Get("k");
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(cache_->Set("f" + std::to_string(i), Val(30 * kKiB)).ok());
    (void)cache_->Get("k");
  }
  std::string v;
  auto g = cache_->Get("k", &v);
  ASSERT_TRUE(g.ok());
  if (g->hit) {
    EXPECT_EQ(v, payload);
  }
}

TEST_F(CachePoliciesTest, AdmissionRejectsExpectedFraction) {
  FlashCacheConfig cfg;
  cfg.admit_probability = 0.25;
  Make(cfg);
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(cache_->Set("k" + std::to_string(i), Val(512)).ok());
  }
  const double reject_ratio =
      static_cast<double>(cache_->stats().admission_rejects) / n;
  EXPECT_NEAR(reject_ratio, 0.75, 0.05);
}

TEST_F(CachePoliciesTest, RejectedSetKeepsOldVersion) {
  FlashCacheConfig cfg;
  cfg.admit_probability = 0.0;  // reject everything after the first build
  Make(cfg);
  // With p = 0 nothing is ever admitted; gets miss.
  ASSERT_TRUE(cache_->Set("k", Val(100, '1')).ok());
  EXPECT_EQ(cache_->stats().admission_rejects, 1u);
  EXPECT_FALSE(cache_->Get("k")->hit);
}

TEST_F(CachePoliciesTest, AdmissionReducesFlashWrites) {
  auto run = [&](double p) {
    FlashCacheConfig cfg;
    cfg.admit_probability = p;
    Make(cfg);
    Rng rng(7);
    for (int i = 0; i < 3000; ++i) {
      EXPECT_TRUE(
          cache_->Set("k" + std::to_string(rng.Uniform(500)), Val(8 * kKiB))
              .ok());
    }
    EXPECT_TRUE(cache_->Flush().ok());
    return device_->wa_stats().host_bytes;
  };
  const u64 full = run(1.0);
  const u64 half = run(0.5);
  EXPECT_LT(half, full * 2 / 3);
}

TEST_F(CachePoliciesTest, AdmissionFullProbabilityAdmitsAll) {
  FlashCacheConfig cfg;
  cfg.admit_probability = 1.0;
  Make(cfg);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(cache_->Set("k" + std::to_string(i), Val(100)).ok());
  }
  EXPECT_EQ(cache_->stats().admission_rejects, 0u);
}

}  // namespace
}  // namespace zncache::cache
