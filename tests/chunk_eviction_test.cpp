// Chunk-granular eviction (EvictionPolicy::kChunk): sub-region validity,
// in-place invalidation, watermark reclaim, TTL expiry, temperature
// segregation, and liveness recovery. See docs/EVICTION.md.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "backends/cache_hint_adapter.h"
#include "backends/middle_region_device.h"
#include "cache/flash_cache.h"

namespace zncache::cache {
namespace {

constexpr u64 kRegion = 64 * kKiB;
constexpr u64 kItem = 4 * kKiB;  // 16 items per region

class ChunkEvictionTest : public ::testing::Test {
 protected:
  void Make(FlashCacheConfig cfg, bool persist_headers = false) {
    clock_ = std::make_unique<sim::VirtualClock>();
    backends::MiddleRegionDeviceConfig dc;
    dc.region_count = 24;
    dc.zns.zone_count = 12;
    dc.zns.zone_size = 256 * kKiB;
    dc.zns.zone_capacity = 256 * kKiB;
    dc.zns.max_open_zones = 6;
    dc.zns.max_active_zones = 8;
    dc.zns.store_data = true;
    dc.middle.region_size = kRegion;
    dc.middle.open_zones = 2;
    dc.middle.min_empty_zones = 2;
    dc.middle.persist_headers = persist_headers;
    device_ =
        std::make_unique<backends::MiddleRegionDevice>(dc, clock_.get());
    ASSERT_TRUE(device_->Init().ok());
    cfg.store_values = true;
    cache_ = std::make_unique<FlashCache>(cfg, device_.get(), clock_.get());
  }

  FlashCacheConfig ChunkConfig() {
    FlashCacheConfig cfg;
    cfg.policy = EvictionPolicy::kChunk;
    return cfg;
  }

  std::string Key(int i) { return "key-" + std::to_string(i); }
  std::string Val(char c = 'v') { return std::string(kItem, c); }

  // Insert n distinct keys starting at `from` (each fills 1/16 region).
  void Fill(int from, int n, char c = 'v') {
    for (int i = from; i < from + n; ++i) {
      ASSERT_TRUE(cache_->Set(Key(i), Val(c)).ok());
    }
  }

  std::unique_ptr<sim::VirtualClock> clock_;
  std::unique_ptr<backends::MiddleRegionDevice> device_;
  std::unique_ptr<FlashCache> cache_;
};

TEST_F(ChunkEvictionTest, OverwriteKillsSealedChunkInPlace) {
  Make(ChunkConfig());
  Fill(0, 32);  // two regions' worth: the first is sealed
  ASSERT_EQ(cache_->stats().chunk_invalidated_items, 0u);

  // Overwriting a key whose copy lives in a sealed region invalidates the
  // old chunk immediately instead of waiting for region eviction.
  ASSERT_TRUE(cache_->Set(Key(0), Val('n')).ok());
  EXPECT_EQ(cache_->stats().chunk_invalidated_items, 1u);

  // The new copy is the one served.
  std::string v;
  auto g = cache_->Get(Key(0), &v);
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(g->hit);
  EXPECT_EQ(v[0], 'n');

  // Some sealed region now reports a live fraction below 1.
  bool saw_partial = false;
  for (u64 r = 0; r < device_->region_count(); ++r) {
    auto frac = cache_->SealedRegionLiveFraction(r);
    if (frac && *frac < 1.0) saw_partial = true;
  }
  EXPECT_TRUE(saw_partial);
}

TEST_F(ChunkEvictionTest, DeleteKillsSealedChunkInPlace) {
  Make(ChunkConfig());
  Fill(0, 32);
  ASSERT_TRUE(cache_->Delete(Key(1)).ok());
  EXPECT_EQ(cache_->stats().chunk_invalidated_items, 1u);
  EXPECT_FALSE(cache_->Get(Key(1))->hit);
}

TEST_F(ChunkEvictionTest, OpenRegionOverwriteIsNotAChunkKill) {
  Make(ChunkConfig());
  // Both versions land in the still-open region: liveness is resolved at
  // seal time, so no in-place invalidation (and no eviction cost) fires.
  ASSERT_TRUE(cache_->Set(Key(0), Val('a')).ok());
  ASSERT_TRUE(cache_->Set(Key(0), Val('b')).ok());
  EXPECT_EQ(cache_->stats().chunk_invalidated_items, 0u);
  // After sealing, the superseded copy is born dead in the bitmap.
  Fill(1, 16);
  bool saw_partial = false;
  for (u64 r = 0; r < device_->region_count(); ++r) {
    auto frac = cache_->SealedRegionLiveFraction(r);
    if (frac && *frac < 1.0) saw_partial = true;
  }
  EXPECT_TRUE(saw_partial);
}

TEST_F(ChunkEvictionTest, MostlyDeadRegionReclaimedAtWatermark) {
  FlashCacheConfig cfg = ChunkConfig();
  cfg.chunk_live_watermark = 0.5;
  Make(cfg);
  const int total = 24 * 16;
  Fill(0, total);  // every slot in use
  // Kill ~3/4 of the early keys: their regions drop far below the
  // watermark, so the next eviction reclaims one outright.
  for (int i = 0; i < total / 2; ++i) {
    if (i % 4 != 0) {
      ASSERT_TRUE(cache_->Delete(Key(i)).ok());
    }
  }
  Fill(total, 64);  // force evictions
  EXPECT_GT(cache_->stats().chunk_reclaimed_regions, 0u);
}

TEST_F(ChunkEvictionTest, FullyLiveVictimPaysChunkEviction) {
  Make(ChunkConfig());
  const int total = 24 * 16;
  Fill(0, total);
  Fill(total, 64);  // all regions fully live: the CLOCK pass must run
  EXPECT_GT(cache_->stats().chunk_evicted_items, 0u);
  EXPECT_GT(cache_->stats().evicted_regions, 0u);
}

TEST_F(ChunkEvictionTest, ExpiredGetIsAMiss) {
  FlashCacheConfig cfg = ChunkConfig();
  cfg.ttl_ns = 1'000'000;  // 1ms
  Make(cfg);
  ASSERT_TRUE(cache_->Set(Key(0), Val()).ok());
  ASSERT_TRUE(cache_->Get(Key(0))->hit);
  clock_->Advance(2'000'000);
  EXPECT_FALSE(cache_->Get(Key(0))->hit);
  EXPECT_EQ(cache_->stats().ttl_expired_items, 1u);
}

TEST_F(ChunkEvictionTest, TtlDeadRegionIsDroppableByHints) {
  FlashCacheConfig cfg = ChunkConfig();
  cfg.ttl_ns = 1'000'000;
  Make(cfg);
  Fill(0, 16);  // seals region 0... once the next insert arrives
  Fill(16, 1);
  RegionId sealed = kInvalidId;
  for (u64 r = 0; r < device_->region_count(); ++r) {
    if (cache_->SealedRegionLiveFraction(r)) {
      sealed = r;
      break;
    }
  }
  ASSERT_NE(sealed, kInvalidId);
  EXPECT_FALSE(cache_->RegionTtlDead(sealed));
  clock_->Advance(2'000'000);
  EXPECT_TRUE(cache_->RegionTtlDead(sealed));

  // The hint adapter drops a TTL-dead region even when it was accessed
  // recently (expired reads were misses anyway).
  backends::CacheHintAdapter hints(cache_.get(), /*cold_age_accesses=*/~0ULL);
  EXPECT_TRUE(hints.TryDropRegion(sealed));
  EXPECT_GT(cache_->stats().dropped_regions, 0u);
}

TEST_F(ChunkEvictionTest, TtlDisabledNeverExpires) {
  Make(ChunkConfig());  // ttl_ns = 0
  Fill(0, 17);
  clock_->Advance(365ULL * 24 * 3600 * 1'000'000'000ULL);
  EXPECT_TRUE(cache_->Get(Key(0))->hit);
  EXPECT_EQ(cache_->stats().ttl_expired_items, 0u);
  for (u64 r = 0; r < device_->region_count(); ++r) {
    EXPECT_FALSE(cache_->RegionTtlDead(r));
  }
}

TEST_F(ChunkEvictionTest, TemperatureSegregationOpensTwoRegions) {
  FlashCacheConfig cfg = ChunkConfig();
  cfg.temperature_classes = 2;
  cfg.hot_overwrite_hits = 2;
  Make(cfg);

  // Cold first-writes go to the cold slot.
  Fill(0, 4);
  auto open0 = cache_->OpenRegions();
  ASSERT_GE(open0.size(), 1u);

  // Heat a key past the threshold, then overwrite it: the rewrite
  // classifies hot and opens (or reuses) the hot slot.
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(cache_->Get(Key(0)).ok());
  ASSERT_TRUE(cache_->Set(Key(0), Val('h')).ok());

  auto open1 = cache_->OpenRegions();
  ASSERT_EQ(open1.size(), 2u);
  bool has_cold = false;
  bool has_hot = false;
  for (const auto& [temp, rid] : open1) {
    if (temp == TempClass::kCold) has_cold = true;
    if (temp == TempClass::kHot) has_hot = true;
  }
  EXPECT_TRUE(has_cold);
  EXPECT_TRUE(has_hot);
}

TEST_F(ChunkEvictionTest, SingleClassKeepsUntaggedRegions) {
  Make(ChunkConfig());  // temperature_classes = 1
  Fill(0, 20);
  auto open = cache_->OpenRegions();
  ASSERT_EQ(open.size(), 1u);
  EXPECT_EQ(open[0].first, TempClass::kNone);
  for (u64 r = 0; r < device_->region_count(); ++r) {
    EXPECT_EQ(cache_->RegionTemp(r), TempClass::kNone);
  }
}

TEST_F(ChunkEvictionTest, RecoveryRebuildsLiveBitmap) {
  FlashCacheConfig cfg = ChunkConfig();
  cfg.persistent = true;
  Make(cfg, /*persist_headers=*/true);
  Fill(0, 32);
  // Overwrite a sealed key: the superseded copy's footer entry persists,
  // but recovery's newest-wins index leaves it dead in the rebuilt bitmap.
  // (A Delete would not work here — deletes are not persisted, so the
  // footer copy legitimately resurrects on warm restart.)
  ASSERT_TRUE(cache_->Set(Key(2), Val('n')).ok());
  ASSERT_TRUE(cache_->Flush().ok());

  // Fresh engine over the same backend.
  FlashCacheConfig cfg2 = ChunkConfig();
  cfg2.persistent = true;
  cfg2.store_values = true;
  auto restarted =
      std::make_unique<FlashCache>(cfg2, device_.get(), clock_.get());
  ASSERT_TRUE(restarted->Recover().ok());

  // Liveness was rebuilt from the recovered index: the deleted chunk is
  // dead, the rest are live and readable.
  bool saw_partial = false;
  for (u64 r = 0; r < device_->region_count(); ++r) {
    auto frac = restarted->SealedRegionLiveFraction(r);
    if (frac && *frac < 1.0) saw_partial = true;
  }
  EXPECT_TRUE(saw_partial);
  std::string v;
  auto g = restarted->Get(Key(2), &v);
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(g->hit);
  EXPECT_EQ(v[0], 'n');  // newest version won
}

TEST_F(ChunkEvictionTest, ChunkCostChargedPerInvalidation) {
  FlashCacheConfig cfg = ChunkConfig();
  cfg.evict_entry_ns = 250;
  cfg.evict_contention_ns = 1000;
  Make(cfg);
  Fill(0, 32);
  const SimNanos before = clock_->Now();
  ASSERT_TRUE(cache_->Delete(Key(0)).ok());
  const SimNanos cost = clock_->Now() - before;
  // Delete = index op + one chunk kill (entry + contention, no convoy
  // term) — far below a region-granular purge of 16 entries.
  EXPECT_GE(cost, cfg.index_op_ns + cfg.evict_entry_ns);
  EXPECT_LT(cost, cfg.index_op_ns + 16 * cfg.evict_entry_ns +
                      16 * cfg.evict_contention_ns);
}

}  // namespace
}  // namespace zncache::cache
