#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bitmap.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/status.h"
#include "common/types.h"

namespace zncache {
namespace {

using namespace zncache::literals;

TEST(Literals, ByteSizes) {
  EXPECT_EQ(1_KiB, 1024ULL);
  EXPECT_EQ(1_MiB, 1024ULL * 1024);
  EXPECT_EQ(1_GiB, 1024ULL * 1024 * 1024);
  EXPECT_EQ(16_MiB, 16 * kMiB);
}

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing key");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing key");
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NoSpace("full"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNoSpace);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(ReturnIfError, PropagatesError) {
  auto f = []() -> Status {
    ZN_RETURN_IF_ERROR(Status::Corruption("bad"));
    return Status::Ok();
  };
  EXPECT_EQ(f().code(), StatusCode::kCorruption);
}

TEST(ReturnIfError, PassesOk) {
  auto f = []() -> Status {
    ZN_RETURN_IF_ERROR(Status::Ok());
    return Status::InvalidArgument("reached end");
  };
  EXPECT_EQ(f().code(), StatusCode::kInvalidArgument);
}

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) same++;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInBounds) {
  Rng rng(9);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(4);
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(5);
  std::set<u64> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformRange(3, 5));
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_TRUE(seen.count(3));
  EXPECT_TRUE(seen.count(5));
}

TEST(Zipf, InRange) {
  Rng rng(11);
  ZipfianGenerator zipf(1000, 0.99);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(zipf.Next(rng), 1000u);
  }
}

TEST(Zipf, SkewedTowardSmallIds) {
  Rng rng(12);
  ZipfianGenerator zipf(100'000, 0.99);
  u64 in_top_1pct = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Next(rng) < 1000) in_top_1pct++;
  }
  // Zipf(0.99): the top 1% of ids should draw far more than 1% of accesses.
  EXPECT_GT(in_top_1pct, n / 4);
}

TEST(Zipf, HigherThetaMoreSkew) {
  Rng rng1(13), rng2(13);
  ZipfianGenerator mild(100'000, 0.5), strong(100'000, 0.99);
  u64 mild_top = 0, strong_top = 0;
  for (int i = 0; i < 20'000; ++i) {
    if (mild.Next(rng1) < 1000) mild_top++;
    if (strong.Next(rng2) < 1000) strong_top++;
  }
  EXPECT_GT(strong_top, mild_top);
}

TEST(ExpRange, InRange) {
  Rng rng(14);
  ExpRangeGenerator gen(5000, 25.0);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(gen.Next(rng), 5000u);
  }
}

TEST(ExpRange, LargerErMoreSkew) {
  Rng rng1(15), rng2(15);
  ExpRangeGenerator er15(100'000, 15.0), er25(100'000, 25.0);
  u64 top15 = 0, top25 = 0;
  for (int i = 0; i < 20'000; ++i) {
    if (er15.Next(rng1) < 5000) top15++;
    if (er25.Next(rng2) < 5000) top25++;
  }
  EXPECT_GT(top25, top15);
}

TEST(ExpRange, CoversKeyPrefixHeavily) {
  Rng rng(16);
  ExpRangeGenerator gen(1000, 15.0);
  u64 first_decile = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (gen.Next(rng) < 100) first_decile++;
  }
  // With ER=15 roughly 1 - e^-1.5 ~ 78% of draws land in the first 10%.
  EXPECT_GT(first_decile, n / 2);
}

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.P50(), 0u);
  EXPECT_EQ(h.P99(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.Record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000u);
  EXPECT_EQ(h.max(), 1000u);
  // Log-bucketed: percentile returns the bucket upper bound, capped at max.
  EXPECT_EQ(h.P50(), 1000u);
}

TEST(Histogram, PercentileOrdering) {
  Histogram h;
  for (u64 v = 1; v <= 10'000; ++v) h.Record(v);
  EXPECT_LE(h.P50(), h.P99());
  EXPECT_LE(h.P99(), h.P999());
  EXPECT_LE(h.P999(), h.max());
}

TEST(Histogram, PercentileAccuracy) {
  Histogram h;
  for (u64 v = 1; v <= 100'000; ++v) h.Record(v);
  // 25% relative error bound from 4 sub-buckets per power of two.
  EXPECT_NEAR(static_cast<double>(h.P50()), 50'000.0, 50'000.0 * 0.3);
  EXPECT_NEAR(static_cast<double>(h.P99()), 99'000.0, 99'000.0 * 0.3);
}

TEST(Histogram, MeanExact) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_DOUBLE_EQ(h.Mean(), 20.0);
}

TEST(Histogram, MergeCombines) {
  Histogram a, b;
  a.Record(5);
  b.Record(500);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 500u);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}


TEST(Bitmap64, StartsAllClear) {
  Bitmap64 b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_EQ(b.words(), 3u);
  EXPECT_EQ(b.CountSet(), 0u);
  EXPECT_FALSE(b.AnySet());
  for (u64 i = 0; i < 130; ++i) EXPECT_FALSE(b.Test(i));
}

TEST(Bitmap64, SetTestClearAcrossWordBoundaries) {
  Bitmap64 b(200);
  const u64 picks[] = {0, 1, 62, 63, 64, 65, 127, 128, 199};
  for (u64 i : picks) b.Set(i);
  for (u64 i : picks) EXPECT_TRUE(b.Test(i)) << i;
  EXPECT_EQ(b.CountSet(), 9u);
  EXPECT_TRUE(b.AnySet());
  b.Clear(63);
  b.Clear(64);
  EXPECT_FALSE(b.Test(63));
  EXPECT_FALSE(b.Test(64));
  EXPECT_TRUE(b.Test(62));
  EXPECT_TRUE(b.Test(65));
  EXPECT_EQ(b.CountSet(), 7u);
}

TEST(Bitmap64, SetIsIdempotentForCount) {
  Bitmap64 b(64);
  b.Set(5);
  b.Set(5);
  EXPECT_EQ(b.CountSet(), 1u);
  b.Clear(5);
  b.Clear(5);
  EXPECT_EQ(b.CountSet(), 0u);
}

TEST(Bitmap64, ClearAllAndReassign) {
  Bitmap64 b(100);
  for (u64 i = 0; i < 100; i += 3) b.Set(i);
  EXPECT_GT(b.CountSet(), 0u);
  b.ClearAll();
  EXPECT_EQ(b.CountSet(), 0u);
  EXPECT_EQ(b.size(), 100u);
  b.Assign(10);
  EXPECT_EQ(b.size(), 10u);
  EXPECT_EQ(b.words(), 1u);
  EXPECT_EQ(b.CountSet(), 0u);
}

TEST(Bitmap64, MatchesReferenceSetUnderRandomOps) {
  Bitmap64 b(500);
  std::set<u64> ref;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const u64 bit = rng.Uniform(500);
    if (rng.Chance(0.5)) {
      b.Set(bit);
      ref.insert(bit);
    } else {
      b.Clear(bit);
      ref.erase(bit);
    }
  }
  EXPECT_EQ(b.CountSet(), ref.size());
  for (u64 i = 0; i < 500; ++i) {
    EXPECT_EQ(b.Test(i), ref.count(i) != 0) << i;
  }
}

TEST(Histogram, LargeValues) {
  Histogram h;
  h.Record(~0ULL / 2);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.max(), ~0ULL / 2);
}

TEST(Histogram, SummaryMentionsCount) {
  Histogram h;
  h.Record(7);
  EXPECT_NE(h.Summary().find("count=1"), std::string::npos);
}

}  // namespace
}  // namespace zncache
