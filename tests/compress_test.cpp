#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/compress.h"
#include "common/random.h"
#include "kv/lsm_store.h"

namespace zncache {
namespace {

std::vector<std::byte> Bytes(std::string_view s) {
  return std::vector<std::byte>(
      reinterpret_cast<const std::byte*>(s.data()),
      reinterpret_cast<const std::byte*>(s.data()) + s.size());
}

void ExpectRoundTrip(const std::vector<std::byte>& raw) {
  const std::vector<std::byte> packed = LzCompress(raw);
  auto unpacked = LzDecompress(packed, raw.size());
  ASSERT_TRUE(unpacked.ok()) << unpacked.status().ToString();
  ASSERT_EQ(unpacked->size(), raw.size());
  if (!raw.empty()) {
    EXPECT_EQ(std::memcmp(unpacked->data(), raw.data(), raw.size()), 0);
  }
}

TEST(LzCompress, EmptyInput) { ExpectRoundTrip({}); }

TEST(LzCompress, TinyInput) { ExpectRoundTrip(Bytes("ab")); }

TEST(LzCompress, RepetitiveInputShrinks) {
  std::vector<std::byte> raw(64 * kKiB, std::byte('x'));
  const std::vector<std::byte> packed = LzCompress(raw);
  EXPECT_LT(packed.size(), raw.size() / 20);  // RLE-like compression
  ExpectRoundTrip(raw);
}

TEST(LzCompress, StructuredTextShrinks) {
  std::string text;
  for (int i = 0; i < 500; ++i) {
    text += "key-" + std::to_string(i % 37) + "=value-" +
            std::to_string(i % 19) + ";";
  }
  const auto raw = Bytes(text);
  const std::vector<std::byte> packed = LzCompress(raw);
  EXPECT_LT(packed.size(), raw.size() / 2);
  ExpectRoundTrip(raw);
}

TEST(LzCompress, RandomInputRoundTrips) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::byte> raw(1 + rng.Uniform(20'000));
    for (auto& b : raw) b = std::byte(static_cast<u8>(rng.Next()));
    ExpectRoundTrip(raw);
  }
}

TEST(LzCompress, IncompressibleInputBounded) {
  Rng rng(78);
  std::vector<std::byte> raw(32 * kKiB);
  for (auto& b : raw) b = std::byte(static_cast<u8>(rng.Next()));
  const std::vector<std::byte> packed = LzCompress(raw);
  // Worst-case expansion is the 1/128 literal-run framing.
  EXPECT_LT(packed.size(), raw.size() + raw.size() / 64 + 16);
}

TEST(LzCompress, OverlappingMatchesRle) {
  // "abcabcabc..." exercises matches that overlap their own output.
  std::string s;
  for (int i = 0; i < 5000; ++i) s += "abc";
  ExpectRoundTrip(Bytes(s));
}

TEST(LzDecompress, RejectsGarbage) {
  std::vector<std::byte> garbage = {std::byte{0x85}, std::byte{0xFF}};
  EXPECT_FALSE(LzDecompress(garbage, 100).ok());  // truncated match
  std::vector<std::byte> bad_ref = {std::byte{0x80}, std::byte{0x09},
                                    std::byte{0x00}};
  EXPECT_FALSE(LzDecompress(bad_ref, 100).ok());  // distance beyond output
}

TEST(LzDecompress, SizeMismatchDetected) {
  const auto raw = Bytes("hello world hello world");
  const std::vector<std::byte> packed = LzCompress(raw);
  EXPECT_FALSE(LzDecompress(packed, raw.size() + 1).ok());
}

// ---- end-to-end: compressed SSTables in the store ----------------------

TEST(CompressedLsm, RoundTripUnderChurn) {
  sim::VirtualClock clock;
  hdd::HddConfig hc;
  hc.capacity = 128 * kMiB;
  hdd::HddDevice hdd(hc, &clock);
  kv::LsmConfig c;
  c.memtable_bytes = 16 * kKiB;
  c.block_bytes = 2 * kKiB;
  c.table_target_bytes = 64 * kKiB;
  c.compress_blocks = true;
  c.block_cache.capacity_bytes = 32 * kKiB;
  kv::LsmStore store(c, &hdd, &clock);

  Rng rng(79);
  std::map<std::string, std::string> truth;
  for (int i = 0; i < 4000; ++i) {
    const std::string key = "key-" + std::to_string(rng.Uniform(600));
    // Highly compressible values.
    const std::string value(200 + rng.Uniform(200), 'a' + i % 3);
    ASSERT_TRUE(store.Put(key, value).ok());
    truth[key] = value;
  }
  ASSERT_TRUE(store.Flush().ok());
  for (const auto& [k, v] : truth) {
    std::string got;
    auto g = store.Get(k, &got);
    ASSERT_TRUE(g.ok());
    ASSERT_TRUE(g->found) << k;
    EXPECT_EQ(got, v) << k;
  }
  // Scans decode compressed blocks too.
  auto scan = store.Scan("key-0", 50);
  ASSERT_TRUE(scan.ok());
  EXPECT_GT(scan->entries.size(), 10u);
}

TEST(CompressedLsm, CompressionShrinksTables) {
  auto build = [](bool compress) {
    sim::VirtualClock clock;
    hdd::HddConfig hc;
    hc.capacity = 128 * kMiB;
    hdd::HddDevice hdd(hc, &clock);
    kv::LsmConfig c;
    c.memtable_bytes = 64 * kKiB;
    c.block_bytes = 2 * kKiB;
    c.compress_blocks = compress;
    kv::LsmStore store(c, &hdd, &clock);
    for (int i = 0; i < 2000; ++i) {
      EXPECT_TRUE(
          store.Put("key-" + std::to_string(i), std::string(100, 'z')).ok());
    }
    EXPECT_TRUE(store.Flush().ok());
    u64 bytes = 0;
    for (u64 level = 0; level < store.LevelCount(); ++level) {
      bytes += store.LevelBytes(level);
    }
    return bytes;
  };
  const u64 raw = build(false);
  const u64 packed = build(true);
  EXPECT_LT(packed, raw / 2);
}

}  // namespace
}  // namespace zncache
