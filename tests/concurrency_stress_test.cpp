// Concurrency stress tests for the sharded front-end and the thread-safe
// layers underneath it. These are the tests the CI TSan job runs: every
// scenario here must be clean under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "backends/schemes.h"
#include "cache/sharded_cache.h"
#include "common/hash.h"
#include "common/random.h"
#include "middle/zone_translation_layer.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/optimeline.h"
#include "sim/clock.h"
#include "zns/zns_device.h"

namespace zncache {
namespace {

using backends::MakeScheme;
using backends::MakeShardedScheme;
using backends::SchemeKind;
using backends::SchemeParams;

constexpr SchemeKind kAllKinds[] = {SchemeKind::kBlock, SchemeKind::kFile,
                                    SchemeKind::kZone, SchemeKind::kRegion};

SchemeParams SmallParams(obs::Registry* metrics) {
  SchemeParams p;
  p.zone_size = 8 * kMiB;
  p.region_size = 512 * kKiB;
  p.cache_bytes = 64 * kMiB;  // Zone-Cache: 8 zones -> up to 4 shards
  p.min_empty_zones = 1;
  p.store_data = true;
  p.metrics = metrics;
  return p;
}

// Deterministic per-key fill byte so any thread can validate any value.
char FillFor(const std::string& key) {
  return static_cast<char>('a' + Fnv1a64(key) % 26);
}

// One deterministic mixed op sequence, replayed both against a bare
// FlashCache and a shards=1 ShardedCache below.
template <typename CacheT>
void ReplaySerial(CacheT& c, u64 ops, u64 seed) {
  Rng rng(seed);
  for (u64 i = 0; i < ops; ++i) {
    const std::string key = "k" + std::to_string(rng.Uniform(300));
    const double op = rng.NextDouble();
    if (op < 0.45) {
      ASSERT_TRUE(c.Get(key).ok());
    } else if (op < 0.85) {
      ASSERT_TRUE(
          c.Set(key, std::string(1 * kKiB + rng.Uniform(8 * kKiB), 'x'))
              .ok());
    } else {
      ASSERT_TRUE(c.Delete(key).ok());
    }
  }
}

// The shards=1 guarantee: identical op sequence against a bare FlashCache
// and a one-shard ShardedCache produces bit-identical statistics and an
// identical virtual-clock reading (the golden serial run).
TEST(ShardedCacheSerial, OneShardBitIdenticalToFlashCache) {
  for (SchemeKind kind : kAllKinds) {
    obs::Registry reg_a;
    obs::Registry reg_b;
    sim::VirtualClock clock_a;
    sim::VirtualClock clock_b;

    auto plain = MakeScheme(kind, SmallParams(&reg_a), &clock_a);
    ASSERT_TRUE(plain.ok()) << SchemeName(kind);

    SchemeParams sp = SmallParams(&reg_b);
    sp.shards = 1;
    auto sharded = MakeShardedScheme(kind, sp, &clock_b);
    ASSERT_TRUE(sharded.ok()) << SchemeName(kind);
    ASSERT_EQ(sharded->cache->shard_count(), 1u);

    ReplaySerial(*plain->cache, 4000, 7);
    ReplaySerial(*sharded->cache, 4000, 7);
    ASSERT_TRUE(plain->cache->Flush().ok());
    ASSERT_TRUE(sharded->cache->Flush().ok());

    const cache::CacheStats& a = plain->cache->stats();
    const cache::CacheStats b = sharded->cache->TotalStats();
    EXPECT_EQ(a.gets, b.gets) << SchemeName(kind);
    EXPECT_EQ(a.hits, b.hits) << SchemeName(kind);
    EXPECT_EQ(a.sets, b.sets) << SchemeName(kind);
    EXPECT_EQ(a.deletes, b.deletes) << SchemeName(kind);
    EXPECT_EQ(a.set_bytes, b.set_bytes) << SchemeName(kind);
    EXPECT_EQ(a.evicted_regions, b.evicted_regions) << SchemeName(kind);
    EXPECT_EQ(a.evicted_items, b.evicted_items) << SchemeName(kind);
    EXPECT_EQ(a.flushed_regions, b.flushed_regions) << SchemeName(kind);
    EXPECT_EQ(a.rejected_sets, b.rejected_sets) << SchemeName(kind);
    EXPECT_EQ(clock_a.Now(), clock_b.Now()) << SchemeName(kind);
    EXPECT_DOUBLE_EQ(plain->WaFactor(), sharded->WaFactor())
        << SchemeName(kind);
  }
}

// T threads of mixed Set/Get/Delete per scheme, with payload integrity:
// each key's value is filled with a byte derived from the key, so a hit
// returning any torn or misrouted payload is detected regardless of which
// thread wrote it last.
TEST(ShardedCacheStress, MixedWorkloadAllSchemes) {
  constexpr u32 kThreads = 4;
  constexpr u64 kOpsPerThread = 3000;
  for (SchemeKind kind : kAllKinds) {
    obs::Registry registry;
    sim::VirtualClock clock;
    SchemeParams p = SmallParams(&registry);
    p.shards = kThreads;
    auto scheme = MakeShardedScheme(kind, p, &clock);
    ASSERT_TRUE(scheme.ok()) << SchemeName(kind) << ": "
                             << scheme.status().ToString();
    cache::ShardedCache& c = *scheme->cache;

    std::atomic<u64> op_errors{0};
    std::atomic<u64> value_errors{0};
    std::vector<std::thread> pool;
    for (u32 t = 0; t < kThreads; ++t) {
      pool.emplace_back([&, t] {
        Rng rng(100 + t);
        std::string value_out;
        for (u64 i = 0; i < kOpsPerThread; ++i) {
          const std::string key = "k" + std::to_string(rng.Uniform(400));
          const double op = rng.NextDouble();
          if (op < 0.45) {
            auto g = c.Get(key, &value_out);
            if (!g.ok()) {
              op_errors++;
            } else if (g->hit && !value_out.empty() &&
                       value_out[0] != FillFor(key)) {
              value_errors++;
            }
          } else if (op < 0.85) {
            const u64 size = 1 * kKiB + rng.Uniform(8 * kKiB);
            if (!c.Set(key, std::string(size, FillFor(key))).ok()) {
              op_errors++;
            }
          } else {
            if (!c.Delete(key).ok()) op_errors++;
          }
        }
      });
    }
    for (auto& th : pool) th.join();

    EXPECT_EQ(op_errors.load(), 0u) << SchemeName(kind);
    EXPECT_EQ(value_errors.load(), 0u) << SchemeName(kind);
    ASSERT_TRUE(c.Flush().ok()) << SchemeName(kind);

    // Every op went through a shard; nothing was lost or double-counted.
    const cache::CacheStats total = c.TotalStats();
    EXPECT_EQ(total.gets + total.sets + total.deletes + total.rejected_sets,
              kThreads * kOpsPerThread)
        << SchemeName(kind);

    // The contention counters flow through the shared registry.
    const cache::ShardContentionStats contention = c.TotalContention();
    EXPECT_EQ(contention.ops, kThreads * kOpsPerThread + kThreads)  // +Flush
        << SchemeName(kind);
    u64 registry_ops = 0;
    for (u32 s = 0; s < kThreads; ++s) {
      obs::Counter* ops = registry.GetCounter(
          "cache.s" + std::to_string(s) + ".shard_ops");
      ASSERT_NE(ops, nullptr);
      registry_ops += ops->value();
    }
    EXPECT_EQ(registry_ops, contention.ops) << SchemeName(kind);
    EXPECT_GE(c.ShardImbalance(), 1.0) << SchemeName(kind);
  }
}

// Admission control under the concurrent mix: doorkeeper + size-threshold
// gates enabled, pure-Set load from several threads. Each shard's doorkeeper
// runs under that shard's writer exclusion, so the accounting must be exact,
// not approximate: every attempted Set either lands (sets) or is turned away
// by exactly one admission gate, and the breakout counters sum to the total.
// Must be TSan-clean.
TEST(ShardedCacheStress, DoorkeeperAdmissionCountersExactUnderConcurrency) {
  constexpr u32 kThreads = 4;
  constexpr u64 kOpsPerThread = 2000;
  for (SchemeKind kind : kAllKinds) {
    obs::Registry registry;
    sim::VirtualClock clock;
    SchemeParams p = SmallParams(&registry);
    p.shards = kThreads;
    p.cache_config.doorkeeper_bits = 1 << 14;
    p.cache_config.doorkeeper_rotate_ns = 20 * sim::kMillisecond;
    p.cache_config.admit_max_size = 6 * kKiB;
    auto scheme = MakeShardedScheme(kind, p, &clock);
    ASSERT_TRUE(scheme.ok()) << SchemeName(kind);
    cache::ShardedCache& c = *scheme->cache;

    std::atomic<u64> op_errors{0};
    std::vector<std::thread> pool;
    for (u32 t = 0; t < kThreads; ++t) {
      pool.emplace_back([&, t] {
        Rng rng(500 + t);
        for (u64 i = 0; i < kOpsPerThread; ++i) {
          const std::string key = "k" + std::to_string(rng.Uniform(600));
          // Sizes straddle admit_max_size so the size gate fires too.
          const u64 size = 1 * kKiB + rng.Uniform(8 * kKiB);
          if (!c.Set(key, std::string(size, FillFor(key))).ok()) op_errors++;
        }
      });
    }
    for (auto& th : pool) th.join();
    EXPECT_EQ(op_errors.load(), 0u) << SchemeName(kind);

    const cache::CacheStats total = c.TotalStats();
    EXPECT_EQ(total.sets + total.admission_rejects + total.rejected_sets,
              kThreads * kOpsPerThread)
        << SchemeName(kind);
    EXPECT_EQ(total.admission_rejects,
              total.admission_doorkeeper_rejects + total.admission_size_rejects)
        << SchemeName(kind);
    EXPECT_GT(total.admission_doorkeeper_rejects, 0u) << SchemeName(kind);
    EXPECT_GT(total.admission_size_rejects, 0u) << SchemeName(kind);
    EXPECT_GT(total.sets, 0u) << SchemeName(kind);
  }
}

// Per-op TTLs must flow through ShardedCache::Set exactly as they do
// through a bare FlashCache: keys hash to different shards, and each
// shard's engine stamps the deadline from the same shared virtual clock.
// This is the regression test for the front-end dropping the ttl argument.
TEST(ShardedCacheSerial, PerOpTtlExpiresAcrossShards) {
  obs::Registry registry;
  sim::VirtualClock clock;
  SchemeParams p = SmallParams(&registry);
  p.shards = 4;
  auto scheme = MakeShardedScheme(SchemeKind::kRegion, p, &clock);
  ASSERT_TRUE(scheme.ok());
  cache::ShardedCache& c = *scheme->cache;
  ASSERT_EQ(c.shard_count(), 4u);

  // Enough keys that every shard holds both a short-TTL and an immortal key.
  constexpr u64 kKeys = 64;
  for (u64 i = 0; i < kKeys; ++i) {
    const std::string key = "t" + std::to_string(i);
    const SimNanos ttl = (i % 2 == 0) ? 5 * sim::kMillisecond : 0;
    ASSERT_TRUE(c.Set(key, std::string(2 * kKiB, FillFor(key)), ttl).ok());
  }
  for (u64 i = 0; i < kKeys; ++i) {
    EXPECT_TRUE(c.Get("t" + std::to_string(i)).value().hit) << i;
  }

  clock.Advance(10 * sim::kMillisecond);
  u64 expired_hits = 0;
  for (u64 i = 0; i < kKeys; ++i) {
    const bool hit = c.Get("t" + std::to_string(i)).value().hit;
    if (i % 2 == 0) {
      if (hit) expired_hits++;
    } else {
      EXPECT_TRUE(hit) << "untagged key t" << i << " must not expire";
    }
  }
  EXPECT_EQ(expired_hits, 0u);
  EXPECT_EQ(c.TotalStats().ttl_expired_items, kKeys / 2);
}

// Latency attribution enabled under the full multi-threaded mix: the
// recording path (thread-striped sink, sticky scopes, per-op timelines)
// must be TSan-clean, account for every op exactly once, and keep the
// attributed phase time consistent with the ops it describes.
TEST(ShardedCacheStress, AttributionUnderConcurrencyIsExactAndClean) {
  constexpr u32 kThreads = 4;
  constexpr u64 kOpsPerThread = 3000;
  for (SchemeKind kind : kAllKinds) {
    obs::Registry registry;
    obs::OpAttribution attribution;
    sim::VirtualClock clock;
    SchemeParams p = SmallParams(&registry);
    p.shards = kThreads;
    p.attribution = &attribution;
    auto scheme = MakeShardedScheme(kind, p, &clock);
    ASSERT_TRUE(scheme.ok()) << SchemeName(kind);
    cache::ShardedCache& c = *scheme->cache;

    std::vector<std::thread> pool;
    for (u32 t = 0; t < kThreads; ++t) {
      pool.emplace_back([&, t] {
        Rng rng(500 + t);
        for (u64 i = 0; i < kOpsPerThread; ++i) {
          const std::string key = "k" + std::to_string(rng.Uniform(400));
          const double op = rng.NextDouble();
          if (op < 0.45) {
            ASSERT_TRUE(c.Get(key).ok());
          } else if (op < 0.85) {
            ASSERT_TRUE(
                c.Set(key, std::string(1 * kKiB + rng.Uniform(8 * kKiB),
                                       FillFor(key)))
                    .ok());
          } else {
            ASSERT_TRUE(c.Delete(key).ok());
          }
        }
      });
    }
    for (auto& th : pool) th.join();

    // Every op recorded exactly once, under its entry-point type (rejected
    // sets still enter through Set and are attributed there).
    const cache::CacheStats total = c.TotalStats();
    EXPECT_EQ(attribution.op_count(obs::OpType::kGet), total.gets)
        << SchemeName(kind);
    EXPECT_EQ(attribution.op_count(obs::OpType::kSet),
              total.sets + total.rejected_sets)
        << SchemeName(kind);
    EXPECT_EQ(attribution.op_count(obs::OpType::kDelete), total.deletes)
        << SchemeName(kind);

    // Sets hit the device path, so their attributed time must be nonzero
    // and the flight recorder must hold a breakdown for the worst ones.
    const std::vector<u64> phases =
        attribution.MergedPhaseTotals(obs::OpType::kSet);
    u64 attributed = 0;
    for (const u64 ns : phases) attributed += ns;
    EXPECT_GT(attributed, 0u) << SchemeName(kind);
    EXPECT_FALSE(attribution.WorstOps(obs::OpType::kSet).empty())
        << SchemeName(kind);
    EXPECT_TRUE(obs::JsonValid(attribution.ToJson())) << SchemeName(kind);
  }
}

// Attribution must be an observer: wiring a sink changes neither the
// modeled clock nor any cache statistic of an identical serial run.
TEST(ShardedCacheSerial, AttributionDoesNotPerturbModeledTime) {
  for (SchemeKind kind : kAllKinds) {
    obs::Registry reg_a;
    obs::Registry reg_b;
    obs::OpAttribution attribution;
    sim::VirtualClock clock_a;
    sim::VirtualClock clock_b;

    SchemeParams pa = SmallParams(&reg_a);
    pa.shards = 1;
    auto plain = MakeShardedScheme(kind, pa, &clock_a);
    ASSERT_TRUE(plain.ok()) << SchemeName(kind);

    SchemeParams pb = SmallParams(&reg_b);
    pb.shards = 1;
    pb.attribution = &attribution;
    auto attributed = MakeShardedScheme(kind, pb, &clock_b);
    ASSERT_TRUE(attributed.ok()) << SchemeName(kind);

    ReplaySerial(*plain->cache, 4000, 7);
    ReplaySerial(*attributed->cache, 4000, 7);

    EXPECT_EQ(clock_a.Now(), clock_b.Now()) << SchemeName(kind);
    const cache::CacheStats a = plain->cache->TotalStats();
    const cache::CacheStats b = attributed->cache->TotalStats();
    EXPECT_EQ(a.gets, b.gets) << SchemeName(kind);
    EXPECT_EQ(a.hits, b.hits) << SchemeName(kind);
    EXPECT_EQ(a.sets, b.sets) << SchemeName(kind);
    EXPECT_EQ(a.evicted_regions, b.evicted_regions) << SchemeName(kind);
    // Serial run: the wall-clock lock-wait phases must stay exactly zero.
    EXPECT_EQ(attribution.MergedPhaseTotals(
                  obs::OpType::kSet)[static_cast<size_t>(
                  obs::Phase::kShardLockWait)],
              0u)
        << SchemeName(kind);
    EXPECT_EQ(attribution.MergedPhaseTotals(
                  obs::OpType::kSet)[static_cast<size_t>(
                  obs::Phase::kZoneLockWait)],
              0u)
        << SchemeName(kind);
  }
}

// Concurrent writers against one shard-routed key set, then a serial
// readback: whatever value won each key must be intact (no torn payloads
// across the region buffers and the device).
TEST(ShardedCacheStress, ConcurrentWritersLeaveIntactValues) {
  obs::Registry registry;
  sim::VirtualClock clock;
  SchemeParams p = SmallParams(&registry);
  p.shards = 4;
  auto scheme = MakeShardedScheme(SchemeKind::kRegion, p, &clock);
  ASSERT_TRUE(scheme.ok());
  cache::ShardedCache& c = *scheme->cache;

  constexpr u32 kThreads = 4;
  std::vector<std::thread> pool;
  for (u32 t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      Rng rng(7 + t);
      for (int i = 0; i < 2000; ++i) {
        const std::string key = "w" + std::to_string(rng.Uniform(200));
        ASSERT_TRUE(
            c.Set(key, std::string(2 * kKiB + rng.Uniform(4 * kKiB),
                                   FillFor(key)))
                .ok());
      }
    });
  }
  for (auto& th : pool) th.join();
  ASSERT_TRUE(c.Flush().ok());

  std::string v;
  u64 hits = 0;
  for (int k = 0; k < 200; ++k) {
    const std::string key = "w" + std::to_string(k);
    auto g = c.Get(key, &v);
    ASSERT_TRUE(g.ok());
    if (!g->hit) continue;
    hits++;
    for (const char ch : v) {
      ASSERT_EQ(ch, FillFor(key)) << key;
    }
  }
  EXPECT_GT(hits, 0u);
}

// Chunk-granular eviction under concurrency: writer threads churn a
// single-shard Region-Cache (driving in-place invalidations, CLOCK chunk
// eviction, and watermark reclaims), readers exercise the lock-free Get
// path against it, and the middle layer's GC consults the hint adapter —
// then a deterministic tail advances the clock past the TTL so the next
// GC cycle provably drops cold regions (gc_dropped_cold > 0).
TEST(ShardedCacheStress, ChunkEvictorWritersReadersAndColdDropGc) {
  constexpr u32 kThreads = 4;
  constexpr u64 kOpsPerThread = 3000;
  obs::Registry registry;
  sim::VirtualClock clock;
  SchemeParams p = SmallParams(&registry);
  p.cache_bytes = 8 * kMiB;  // 16 regions: churn must evict and GC
  p.device_zones = 4;        // minimum over-provisioning: GC migrates live zones
  p.gc_valid_ratio = 0.9;    // aggressive GC: victims carry live slots
  p.shards = 1;  // hinted GC requires the single-shard lock order
  p.hint_cold_age = 2000;
  p.cache_config.policy = cache::EvictionPolicy::kChunk;
  p.cache_config.chunk_live_watermark = 0.6;
  p.cache_config.temperature_classes = 2;
  p.cache_config.hot_overwrite_hits = 2;
  p.cache_config.ttl_ns = 50'000'000;  // 50ms of virtual time
  auto scheme = MakeShardedScheme(SchemeKind::kRegion, p, &clock);
  ASSERT_TRUE(scheme.ok()) << scheme.status().ToString();
  cache::ShardedCache& c = *scheme->cache;

  std::atomic<u64> op_errors{0};
  std::atomic<u64> value_errors{0};
  std::vector<std::thread> pool;
  for (u32 t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      Rng rng(900 + t);
      std::string value_out;
      for (u64 i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "c" + std::to_string(rng.Uniform(300));
        const double op = rng.NextDouble();
        if (op < 0.40) {
          auto g = c.Get(key, &value_out);
          if (!g.ok()) {
            op_errors++;
          } else if (g->hit && !value_out.empty() &&
                     value_out[0] != FillFor(key)) {
            value_errors++;
          }
        } else if (op < 0.90) {
          const u64 size = 1 * kKiB + rng.Uniform(8 * kKiB);
          if (!c.Set(key, std::string(size, FillFor(key))).ok()) op_errors++;
        } else {
          if (!c.Delete(key).ok()) op_errors++;
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(op_errors.load(), 0u);
  EXPECT_EQ(value_errors.load(), 0u);

  const cache::CacheStats mid = c.TotalStats();
  EXPECT_GT(mid.chunk_invalidated_items, 0u);
  EXPECT_GT(mid.evicted_regions, 0u);

  // Deterministic cold-drop tail: everything sealed so far is now past its
  // TTL, so GC cycles triggered by fresh churn drop regions instead of
  // migrating them.
  clock.Advance(100'000'000);
  Rng rng(1234);
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "t" + std::to_string(rng.Uniform(300));
    ASSERT_TRUE(
        c.Set(key, std::string(2 * kKiB + rng.Uniform(4 * kKiB), FillFor(key)))
            .ok());
  }
  ASSERT_TRUE(c.Flush().ok());
  obs::Counter* dropped_cold = registry.GetCounter("middle.gc.dropped_cold");
  ASSERT_NE(dropped_cold, nullptr);
  EXPECT_GT(dropped_cold->value(), 0u);
  EXPECT_GT(c.TotalStats().ttl_expired_items + c.TotalStats().dropped_items,
            0u);
}

// Multi-shard variant (hints disabled — their lock order requires one
// shard): four shards run chunk eviction with temperature-segregated
// writes concurrently over one translation layer; TSan guards the
// temp-tagged reserve/write path and the per-shard chunk bookkeeping.
TEST(ShardedCacheStress, ChunkMultiShardTemperatureSegregation) {
  constexpr u32 kThreads = 4;
  constexpr u64 kOpsPerThread = 3000;
  obs::Registry registry;
  sim::VirtualClock clock;
  SchemeParams p = SmallParams(&registry);
  p.shards = kThreads;
  p.cache_config.policy = cache::EvictionPolicy::kChunk;
  p.cache_config.temperature_classes = 2;
  p.cache_config.hot_overwrite_hits = 1;
  auto scheme = MakeShardedScheme(SchemeKind::kRegion, p, &clock);
  ASSERT_TRUE(scheme.ok()) << scheme.status().ToString();
  cache::ShardedCache& c = *scheme->cache;

  std::atomic<u64> op_errors{0};
  std::atomic<u64> value_errors{0};
  std::vector<std::thread> pool;
  for (u32 t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      Rng rng(500 + t);
      std::string value_out;
      for (u64 i = 0; i < kOpsPerThread; ++i) {
        // A skewed key mix: a small hot set is read and rewritten often.
        const bool hot = rng.NextDouble() < 0.3;
        const std::string key =
            (hot ? "h" : "m") + std::to_string(rng.Uniform(hot ? 20 : 400));
        const double op = rng.NextDouble();
        if (op < 0.45) {
          auto g = c.Get(key, &value_out);
          if (!g.ok()) {
            op_errors++;
          } else if (g->hit && !value_out.empty() &&
                     value_out[0] != FillFor(key)) {
            value_errors++;
          }
        } else {
          const u64 size = 1 * kKiB + rng.Uniform(8 * kKiB);
          if (!c.Set(key, std::string(size, FillFor(key))).ok()) op_errors++;
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  ASSERT_TRUE(c.Flush().ok());

  EXPECT_EQ(op_errors.load(), 0u);
  EXPECT_EQ(value_errors.load(), 0u);
  const cache::CacheStats total = c.TotalStats();
  EXPECT_GT(total.chunk_invalidated_items, 0u);
  EXPECT_GT(total.hits, 0u);
}

// --- golden serial equality -------------------------------------------------
//
// The concurrency work must not change what the serial simulator computes:
// the tables below were captured from the coarse-locked layer (run with
// ZN_GOLDEN_PRINT=1 to re-harvest) and every field — virtual clock included —
// must stay bit-identical after the fine-grained locking refactor.

struct LayerGolden {
  const char* name;
  u64 clock;
  u64 host_writes;
  u64 migrated;
  u64 gc_runs;
  u64 zones_reset;
  u64 zones_finished;
  u64 dropped;
  u64 checksum;  // FNV over every mapped region's full contents
};

// Drops deterministically so hinted-GC goldens need no cache engine.
class EveryThirdHints : public middle::GcHintProvider {
 public:
  bool TryDropRegion(u64 region_id) override { return region_id % 3 == 0; }
};

LayerGolden RunLayerGoldenWorkload(const char* name, bool persist, bool append,
                                   bool hinted) {
  constexpr u64 kRegionSz = 32 * kKiB;
  // 80 live regions over 128 physical slots: GC victims carry valid data,
  // so migrations (and hint drops) actually happen in every variant.
  constexpr u64 kSlots = 80;
  zns::ZnsConfig dc;
  dc.zone_count = 16;
  dc.zone_size = 256 * kKiB;
  dc.zone_capacity = 256 * kKiB;
  dc.max_open_zones = 8;
  dc.max_active_zones = 10;
  obs::Registry registry;
  dc.metrics = &registry;
  sim::VirtualClock clock;
  zns::ZnsDevice dev(dc, &clock);

  middle::MiddleLayerConfig mc;
  mc.region_size = kRegionSz;
  mc.region_slots = kSlots;
  mc.open_zones = 2;
  mc.min_empty_zones = 3;
  mc.persist_headers = persist;
  mc.use_zone_append = append;
  mc.metrics = &registry;
  middle::ZoneTranslationLayer layer(mc, &dev);
  EXPECT_TRUE(layer.ValidateConfig().ok()) << layer.ValidateConfig().ToString();
  EveryThirdHints hints;
  if (hinted) layer.set_hint_provider(&hints);

  Rng rng(91);
  std::vector<std::byte> region(kRegionSz);
  std::vector<std::byte> readback(64);
  for (int i = 0; i < 700; ++i) {
    const u64 rid = rng.Uniform(kSlots);
    const double op = rng.NextDouble();
    if (op < 0.10) {
      EXPECT_TRUE(layer.InvalidateRegion(rid).ok()) << name;
    } else if (op < 0.40) {
      const u64 off = rng.Uniform(kRegionSz - readback.size());
      auto r = layer.ReadRegion(rid, off, readback);
      EXPECT_TRUE(r.ok() || r.status().code() == StatusCode::kNotFound)
          << name << ": " << r.status().ToString();
    } else {
      const std::byte fill{static_cast<unsigned char>(
          'a' + (rid * 31 + static_cast<u64>(i)) % 26)};
      std::fill(region.begin(), region.end(), fill);
      EXPECT_TRUE(layer.WriteRegion(rid, region, sim::IoMode::kForeground).ok())
          << name;
    }
  }

  u64 checksum = 0xCBF29CE484222325ULL;
  std::vector<std::byte> full(kRegionSz);
  for (u64 rid = 0; rid < kSlots; ++rid) {
    if (!layer.GetLocation(rid).has_value()) continue;
    auto r = layer.ReadRegion(rid, 0, full);
    EXPECT_TRUE(r.ok()) << name << " rid " << rid;
    checksum = Fnv1a64(
        std::string_view(reinterpret_cast<const char*>(full.data()),
                         full.size()),
        checksum + rid);
  }

  const middle::MiddleStats& s = layer.stats();
  return LayerGolden{name,           clock.Now(),    s.host_region_writes,
                     s.migrated_regions, s.gc_runs,  s.zones_reset,
                     s.zones_finished,   s.dropped_regions, checksum};
}

TEST(GoldenSerial, MiddleLayerBitIdenticalToSeed) {
  const LayerGolden expected[] = {
      {"base", 172279924ULL, 430, 128, 57, 57, 0, 0, 5954504116239969682ULL},
      {"append", 172279924ULL, 430, 128, 57, 57, 0, 0,
       5954504116239969682ULL},
      {"persist", 230329412ULL, 430, 208, 79, 79, 90, 0,
       5954504116239969682ULL},
      {"hinted", 145452800ULL, 430, 60, 49, 49, 0, 27,
       18146096140247215248ULL},
  };
  const LayerGolden got[] = {
      RunLayerGoldenWorkload("base", false, false, false),
      RunLayerGoldenWorkload("append", false, true, false),
      RunLayerGoldenWorkload("persist", true, false, false),
      RunLayerGoldenWorkload("hinted", false, false, true),
  };
  if (std::getenv("ZN_GOLDEN_PRINT") != nullptr) {
    for (const LayerGolden& g : got) {
      std::printf("{\"%s\", %lluULL, %llu, %llu, %llu, %llu, %llu, %llu, "
                  "%lluULL},\n",
                  g.name, static_cast<unsigned long long>(g.clock),
                  static_cast<unsigned long long>(g.host_writes),
                  static_cast<unsigned long long>(g.migrated),
                  static_cast<unsigned long long>(g.gc_runs),
                  static_cast<unsigned long long>(g.zones_reset),
                  static_cast<unsigned long long>(g.zones_finished),
                  static_cast<unsigned long long>(g.dropped),
                  static_cast<unsigned long long>(g.checksum));
    }
    GTEST_SKIP() << "golden print mode";
  }
  for (size_t i = 0; i < std::size(expected); ++i) {
    const LayerGolden& e = expected[i];
    const LayerGolden& g = got[i];
    EXPECT_EQ(g.clock, e.clock) << e.name;
    EXPECT_EQ(g.host_writes, e.host_writes) << e.name;
    EXPECT_EQ(g.migrated, e.migrated) << e.name;
    EXPECT_EQ(g.gc_runs, e.gc_runs) << e.name;
    EXPECT_EQ(g.zones_reset, e.zones_reset) << e.name;
    EXPECT_EQ(g.zones_finished, e.zones_finished) << e.name;
    EXPECT_EQ(g.dropped, e.dropped) << e.name;
    EXPECT_EQ(g.checksum, e.checksum) << e.name;
  }
}

struct SchemeGolden {
  const char* name;
  u64 clock;
  u64 gets, hits, sets, deletes, set_bytes;
  u64 evicted_regions, evicted_items, flushed_regions;
  u64 mid_host_writes, mid_gc_runs, mid_migrated, mid_zones_reset;
};

// Deterministic per-key value size so refills equal sets.
u64 GoldenValueSize(const std::string& key) {
  return 1 * kKiB + Fnv1a64(key) % (24 * kKiB);
}

void GoldenChurn(cache::ShardedCache& c, u64 ops, u64 seed) {
  Rng rng(seed);
  for (u64 i = 0; i < ops; ++i) {
    const std::string key = "g" + std::to_string(rng.Uniform(4000));
    const double op = rng.NextDouble();
    if (op < 0.4) {
      auto g = c.Get(key);
      ASSERT_TRUE(g.ok());
      if (!g->hit) {
        ASSERT_TRUE(
            c.Set(key, std::string(GoldenValueSize(key), FillFor(key))).ok());
      }
    } else if (op < 0.85) {
      ASSERT_TRUE(
          c.Set(key, std::string(GoldenValueSize(key), FillFor(key))).ok());
    } else {
      ASSERT_TRUE(c.Delete(key).ok());
    }
  }
}

TEST(GoldenSerial, SchemesBitIdenticalToSeed) {
  const SchemeGolden expected[] = {
      {"Block-Cache", 596582534, 4840, 2657, 7551, 1792, 101364595, 70, 949,
       197, 0, 0, 0, 0},
      {"File-Cache", 643571960, 4840, 2657, 7551, 1792, 101364595, 70, 949,
       197, 0, 0, 0, 0},
      {"Zone-Cache", 361100143, 4840, 2592, 7616, 1792, 102121548, 6, 1632,
       13, 0, 0, 0, 0},
      {"Region-Cache", 340800467, 4840, 2657, 7551, 1792, 101364595, 70, 949,
       197, 197, 1, 3, 1},
  };
  size_t idx = 0;
  const bool print = std::getenv("ZN_GOLDEN_PRINT") != nullptr;
  for (SchemeKind kind : kAllKinds) {
    obs::Registry registry;
    sim::VirtualClock clock;
    SchemeParams p = SmallParams(&registry);
    p.shards = 1;
    auto scheme = MakeShardedScheme(kind, p, &clock);
    ASSERT_TRUE(scheme.ok()) << SchemeName(kind);
    GoldenChurn(*scheme->cache, 12000, 17);
    ASSERT_TRUE(scheme->cache->Flush().ok());

    const cache::CacheStats s = scheme->cache->TotalStats();
    const SchemeGolden g{
        SchemeName(kind).data(), clock.Now(), s.gets, s.hits, s.sets,
        s.deletes, s.set_bytes, s.evicted_regions, s.evicted_items,
        s.flushed_regions,
        registry.GetCounter("middle.host_region_writes")->value(),
        registry.GetCounter("middle.gc.runs")->value(),
        registry.GetCounter("middle.gc.migrated_regions")->value(),
        registry.GetCounter("middle.zones.reset")->value()};
    if (print) {
      std::printf(
          "{\"%s\", %llu, %llu, %llu, %llu, %llu, %llu, %llu, %llu, %llu, "
          "%llu, %llu, %llu, %llu},\n",
          g.name, static_cast<unsigned long long>(g.clock),
          static_cast<unsigned long long>(g.gets),
          static_cast<unsigned long long>(g.hits),
          static_cast<unsigned long long>(g.sets),
          static_cast<unsigned long long>(g.deletes),
          static_cast<unsigned long long>(g.set_bytes),
          static_cast<unsigned long long>(g.evicted_regions),
          static_cast<unsigned long long>(g.evicted_items),
          static_cast<unsigned long long>(g.flushed_regions),
          static_cast<unsigned long long>(g.mid_host_writes),
          static_cast<unsigned long long>(g.mid_gc_runs),
          static_cast<unsigned long long>(g.mid_migrated),
          static_cast<unsigned long long>(g.mid_zones_reset));
      continue;
    }
    const SchemeGolden& e = expected[idx++];
    ASSERT_STREQ(g.name, e.name);
    EXPECT_EQ(g.clock, e.clock) << e.name;
    EXPECT_EQ(g.gets, e.gets) << e.name;
    EXPECT_EQ(g.hits, e.hits) << e.name;
    EXPECT_EQ(g.sets, e.sets) << e.name;
    EXPECT_EQ(g.deletes, e.deletes) << e.name;
    EXPECT_EQ(g.set_bytes, e.set_bytes) << e.name;
    EXPECT_EQ(g.evicted_regions, e.evicted_regions) << e.name;
    EXPECT_EQ(g.evicted_items, e.evicted_items) << e.name;
    EXPECT_EQ(g.flushed_regions, e.flushed_regions) << e.name;
    EXPECT_EQ(g.mid_host_writes, e.mid_host_writes) << e.name;
    EXPECT_EQ(g.mid_gc_runs, e.mid_gc_runs) << e.name;
    EXPECT_EQ(g.mid_migrated, e.mid_migrated) << e.name;
    EXPECT_EQ(g.mid_zones_reset, e.mid_zones_reset) << e.name;
  }
  if (print) GTEST_SKIP() << "golden print mode";
}

// Hammers the middle layer directly: concurrent writers on an overlapping
// region-id space, an invalidator, readers, and a thread forcing GC — the
// exact interleaving the reserve/write/publish protocol and the four-phase
// migration must survive. Payloads are self-describing (region id + write
// stamp in the first 16 bytes, fill derived from both) so any lost,
// duplicated or torn mapping shows up as a readback mismatch; the final
// CheckInvariants() proves the mapping table and bitmaps still form a
// bijection.
void RunLayerConcurrencyStress(bool use_zone_append) {
  constexpr u64 kRegionSz = 32 * kKiB;
  constexpr u64 kSlots = 80;
  constexpr u32 kWriters = 4;
  constexpr int kWritesPerThread = 250;
  zns::ZnsConfig dc;
  dc.zone_count = 16;
  dc.zone_size = 256 * kKiB;
  dc.zone_capacity = 256 * kKiB;
  dc.max_open_zones = 8;
  dc.max_active_zones = 10;
  obs::Registry registry;
  dc.metrics = &registry;
  sim::VirtualClock clock;
  zns::ZnsDevice dev(dc, &clock);

  middle::MiddleLayerConfig mc;
  mc.region_size = kRegionSz;
  mc.region_slots = kSlots;
  mc.open_zones = 4;
  mc.min_empty_zones = 3;
  mc.use_zone_append = use_zone_append;
  mc.metrics = &registry;
  middle::ZoneTranslationLayer layer(mc, &dev);
  ASSERT_TRUE(layer.ValidateConfig().ok());

  auto fill_for = [](u64 rid, u64 stamp) {
    return std::byte{static_cast<unsigned char>('a' + (rid * 131 + stamp * 7) %
                                                26)};
  };
  auto make_payload = [&](std::vector<std::byte>* buf, u64 rid, u64 stamp) {
    std::fill(buf->begin(), buf->end(), fill_for(rid, stamp));
    std::memcpy(buf->data(), &rid, 8);
    std::memcpy(buf->data() + 8, &stamp, 8);
  };

  std::atomic<u64> stamp_gen{1};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (u32 w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(1000 + w);
      std::vector<std::byte> payload(kRegionSz);
      for (int i = 0; i < kWritesPerThread; ++i) {
        const u64 rid = rng.Uniform(kSlots);
        const u64 stamp = stamp_gen.fetch_add(1);
        make_payload(&payload, rid, stamp);
        auto r = layer.WriteRegion(rid, payload, sim::IoMode::kForeground);
        EXPECT_TRUE(r.ok()) << r.status().ToString();
      }
    });
  }
  // Invalidator: races ClearMapping and immediate zone resets against the
  // writers and against in-flight migrations.
  threads.emplace_back([&] {
    Rng rng(7777);
    for (int i = 0; i < 400; ++i) {
      EXPECT_TRUE(layer.InvalidateRegion(rng.Uniform(kSlots)).ok());
    }
  });
  // Readers: shared-lock reads must never observe a torn slot or a zone
  // reset under them. A successful header read must name the region.
  threads.emplace_back([&] {
    Rng rng(4242);
    std::vector<std::byte> head(16);
    for (int i = 0; i < 600; ++i) {
      const u64 rid = rng.Uniform(kSlots);
      auto r = layer.ReadRegion(rid, 0, head);
      if (r.ok()) {
        u64 got_rid = 0;
        std::memcpy(&got_rid, head.data(), 8);
        EXPECT_EQ(got_rid, rid);
      } else {
        EXPECT_EQ(r.status().code(), StatusCode::kNotFound)
            << r.status().ToString();
      }
    }
  });
  // Forced-GC thread: keeps migration snapshots permanently in flight so
  // the copy-outside-lock path races every other actor.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      EXPECT_TRUE(layer.MaybeCollect().ok());
      std::this_thread::yield();
    }
  });
  for (u32 t = 0; t < threads.size() - 1; ++t) threads[t].join();
  stop.store(true, std::memory_order_relaxed);
  threads.back().join();

  const Status inv = layer.CheckInvariants();
  EXPECT_TRUE(inv.ok()) << inv.ToString();

  // Every surviving mapping must read back a coherent payload: the stored
  // region id matches, and every data byte matches the fill derived from
  // the stored (rid, stamp) pair — no torn or cross-region slots.
  std::vector<std::byte> full(kRegionSz);
  u64 mapped = 0;
  for (u64 rid = 0; rid < kSlots; ++rid) {
    if (!layer.GetLocation(rid).has_value()) continue;
    mapped++;
    auto r = layer.ReadRegion(rid, 0, full);
    ASSERT_TRUE(r.ok()) << "rid " << rid << ": " << r.status().ToString();
    u64 got_rid = 0, got_stamp = 0;
    std::memcpy(&got_rid, full.data(), 8);
    std::memcpy(&got_stamp, full.data() + 8, 8);
    EXPECT_EQ(got_rid, rid);
    const std::byte want = fill_for(rid, got_stamp);
    for (u64 b = 16; b < kRegionSz; ++b) {
      ASSERT_EQ(full[b], want) << "rid " << rid << " byte " << b;
    }
  }
  EXPECT_GT(mapped, 0u);
  // The workload is sized so GC actually ran while writers were live.
  EXPECT_GT(layer.stats().gc_runs, 0u);
}

TEST(LayerConcurrencyStress, WritersInvalidatorReadersForcedGc) {
  RunLayerConcurrencyStress(/*use_zone_append=*/false);
}

TEST(LayerConcurrencyStress, WritersInvalidatorReadersForcedGcZoneAppend) {
  RunLayerConcurrencyStress(/*use_zone_append=*/true);
}

// The seqlock/epoch read path's coherence witness: reader threads pull
// FULL regions (not just headers) while writers remap slots, an
// invalidator requests zone resets, and forced GC migrates zones under
// them. Every successful read must return a payload whose every byte
// matches the fill derived from its embedded (rid, stamp) header:
//   * a seqlock that failed to retry a torn read would surface a payload
//     whose header names a different region or whose tail bytes disagree
//     with the header (mapping moved mid-read);
//   * a zone reset NOT deferred past the reader's epoch would surface
//     erased or recycled bytes under a still-valid mapping.
// Runs append-first (the new default write mode).
TEST(LayerConcurrencyStress, SeqlockEpochFullReadCoherence) {
  constexpr u64 kRegionSz = 32 * kKiB;
  constexpr u64 kSlots = 64;
  constexpr u32 kWriters = 3;
  constexpr u32 kReaders = 3;
  zns::ZnsConfig dc;
  dc.zone_count = 16;
  dc.zone_size = 256 * kKiB;
  dc.zone_capacity = 256 * kKiB;
  dc.max_open_zones = 8;
  dc.max_active_zones = 10;
  obs::Registry registry;
  dc.metrics = &registry;
  sim::VirtualClock clock;
  zns::ZnsDevice dev(dc, &clock);

  middle::MiddleLayerConfig mc;
  mc.region_size = kRegionSz;
  mc.region_slots = kSlots;
  mc.open_zones = 4;
  mc.min_empty_zones = 3;
  mc.use_zone_append = true;
  mc.metrics = &registry;
  middle::ZoneTranslationLayer layer(mc, &dev);
  ASSERT_TRUE(layer.ValidateConfig().ok());

  auto fill_for = [](u64 rid, u64 stamp) {
    return std::byte{static_cast<unsigned char>('a' + (rid * 131 + stamp * 7) %
                                                26)};
  };

  std::atomic<u64> stamp_gen{1};
  std::atomic<bool> stop{false};
  std::atomic<u64> coherent_reads{0};
  std::atomic<u64> incoherent_reads{0};
  std::vector<std::thread> threads;
  for (u32 w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(9000 + w);
      std::vector<std::byte> payload(kRegionSz);
      for (int i = 0; i < 200; ++i) {
        const u64 rid = rng.Uniform(kSlots);
        const u64 stamp = stamp_gen.fetch_add(1);
        std::fill(payload.begin(), payload.end(), fill_for(rid, stamp));
        std::memcpy(payload.data(), &rid, 8);
        std::memcpy(payload.data() + 8, &stamp, 8);
        auto r = layer.WriteRegion(rid, payload, sim::IoMode::kForeground);
        EXPECT_TRUE(r.ok()) << r.status().ToString();
      }
    });
  }
  threads.emplace_back([&] {
    Rng rng(8888);
    for (int i = 0; i < 300; ++i) {
      EXPECT_TRUE(layer.InvalidateRegion(rng.Uniform(kSlots)).ok());
    }
  });
  for (u32 rt = 0; rt < kReaders; ++rt) {
    threads.emplace_back([&, rt] {
      Rng rng(5000 + rt);
      std::vector<std::byte> full(kRegionSz);
      for (int i = 0; i < 300; ++i) {
        const u64 rid = rng.Uniform(kSlots);
        auto r = layer.ReadRegion(rid, 0, full);
        if (!r.ok()) {
          EXPECT_EQ(r.status().code(), StatusCode::kNotFound)
              << r.status().ToString();
          continue;
        }
        u64 got_rid = 0, got_stamp = 0;
        std::memcpy(&got_rid, full.data(), 8);
        std::memcpy(&got_stamp, full.data() + 8, 8);
        const std::byte want = fill_for(rid, got_stamp);
        u64 bad = got_rid == rid ? 0 : 1;
        for (u64 b = 16; b < kRegionSz; ++b) {
          if (full[b] != want) bad++;
        }
        if (bad == 0) {
          coherent_reads.fetch_add(1);
        } else {
          incoherent_reads.fetch_add(1);
          ADD_FAILURE() << "rid " << rid << " stamp " << got_stamp
                        << " header rid " << got_rid << ": " << bad
                        << " incoherent bytes";
        }
      }
    });
  }
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      EXPECT_TRUE(layer.MaybeCollect().ok());
      std::this_thread::yield();
    }
  });
  for (u32 t = 0; t < threads.size() - 1; ++t) threads[t].join();
  stop.store(true, std::memory_order_relaxed);
  threads.back().join();

  const Status inv = layer.CheckInvariants();
  EXPECT_TRUE(inv.ok()) << inv.ToString();
  EXPECT_EQ(incoherent_reads.load(), 0u);
  EXPECT_GT(coherent_reads.load(), 0u);
  EXPECT_GT(layer.stats().gc_runs, 0u);
}

// Dekker handshake + accounting stress for the lock-free ShardedCache
// read path: reader threads hammer Gets (validating payload fill) while
// writers Set/Delete the same keys, forcing the reader-sees-writer backoff
// and the writer-drains-readers spin to interleave constantly. Afterwards
// a quiescent read-only pass must be 100% lock-free with zero lock waits
// charged — the counter-level form of the ISSUE's "Get acquires no mutex"
// acceptance — and the per-shard get_lockfree counters must sum exactly.
TEST(ShardedCacheStress, LockFreeGetDekkerAccounting) {
  constexpr u32 kShards = 4;
  constexpr u64 kOpsPerThread = 2500;
  obs::Registry registry;
  sim::VirtualClock clock;
  SchemeParams p = SmallParams(&registry);
  p.shards = kShards;
  auto scheme = MakeShardedScheme(SchemeKind::kRegion, p, &clock);
  ASSERT_TRUE(scheme.ok()) << scheme.status().ToString();
  cache::ShardedCache& c = *scheme->cache;

  std::atomic<u64> value_errors{0};
  std::vector<std::thread> pool;
  for (u32 t = 0; t < 2; ++t) {  // writers
    pool.emplace_back([&, t] {
      Rng rng(300 + t);
      for (u64 i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "k" + std::to_string(rng.Uniform(400));
        if (rng.NextDouble() < 0.8) {
          const u64 size = 1 * kKiB + rng.Uniform(8 * kKiB);
          ASSERT_TRUE(c.Set(key, std::string(size, FillFor(key))).ok());
        } else {
          ASSERT_TRUE(c.Delete(key).ok());
        }
      }
    });
  }
  for (u32 t = 0; t < 3; ++t) {  // readers
    pool.emplace_back([&, t] {
      Rng rng(600 + t);
      std::string value_out;
      for (u64 i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "k" + std::to_string(rng.Uniform(400));
        auto g = c.Get(key, &value_out);
        ASSERT_TRUE(g.ok()) << g.status().ToString();
        if (g->hit && !value_out.empty() && value_out[0] != FillFor(key)) {
          value_errors++;
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(value_errors.load(), 0u);

  const cache::ShardContentionStats racy = c.TotalContention();
  // Readers vastly outnumber writer exclusions; most Gets must have gone
  // lock-free even under constant writer interference.
  EXPECT_GT(racy.get_lockfree, 0u);
  EXPECT_LE(racy.get_lockfree, c.TotalStats().gets);

  // Quiescent read-only pass: no writers anywhere, so EVERY Get must take
  // the lock-free path and charge nothing.
  constexpr u64 kQuiescentGets = 1000;
  Rng rng(42);
  std::string value_out;
  for (u64 i = 0; i < kQuiescentGets; ++i) {
    ASSERT_TRUE(c.Get("k" + std::to_string(rng.Uniform(400)), &value_out).ok());
  }
  const cache::ShardContentionStats quiet = c.TotalContention();
  EXPECT_EQ(quiet.get_lockfree - racy.get_lockfree, kQuiescentGets);
  EXPECT_EQ(quiet.lock_waits, racy.lock_waits);
  EXPECT_EQ(quiet.lock_wait_ns, racy.lock_wait_ns);

  // The per-shard registry counters are the same numbers the bench and
  // the perf gate read; they must sum to the aggregate exactly.
  u64 registry_lockfree = 0;
  for (u32 s = 0; s < kShards; ++s) {
    obs::Counter* lf = registry.GetCounter(
        "cache.s" + std::to_string(s) + ".get_lockfree");
    ASSERT_NE(lf, nullptr);
    registry_lockfree += lf->value();
  }
  EXPECT_EQ(registry_lockfree, quiet.get_lockfree);
}

// Regression test for the unpublished-slot reset race: with exactly one
// region slot per zone, every landed write instantly makes its zone FULL
// with valid_count == 0 until the mapping publish — the precise state in
// which a concurrent GC cycle or invalidate-triggered reset could erase
// the just-written data and hand the zone back to a new writer before the
// late publish mapped the region onto it. The constant GC pressure (low
// zone budget + a collector thread) keeps reset/adopt decisions racing
// every reserve→write→publish window; a zone reset or re-adopted while
// pinned by ZoneMeta::unpublished shows up as a readback mismatch or a
// broken mapping bijection.
void RunUnpublishedSlotStress(bool use_zone_append,
                              const io::IoTopology& topology = {}) {
  constexpr u64 kRegionSz = 64 * kKiB;
  constexpr u64 kSlots = 10;
  constexpr u32 kWriters = 4;
  constexpr int kWritesPerThread = 300;
  zns::ZnsConfig dc;
  dc.zone_count = 24;
  dc.zone_size = 64 * kKiB;
  dc.zone_capacity = 64 * kKiB;
  dc.max_open_zones = 8;
  dc.max_active_zones = 10;
  dc.topology = topology;
  obs::Registry registry;
  dc.metrics = &registry;
  sim::VirtualClock clock;
  zns::ZnsDevice dev(dc, &clock);

  middle::MiddleLayerConfig mc;
  mc.region_size = kRegionSz;  // == zone capacity: 1 slot per zone
  mc.region_slots = kSlots;
  mc.open_zones = 4;
  mc.min_empty_zones = 8;  // rewrites drain empties fast -> GC stays hot
  mc.use_zone_append = use_zone_append;
  mc.metrics = &registry;
  middle::ZoneTranslationLayer layer(mc, &dev);
  ASSERT_TRUE(layer.ValidateConfig().ok());
  ASSERT_EQ(layer.regions_per_zone(), 1u);

  auto fill_for = [](u64 rid, u64 stamp) {
    return std::byte{static_cast<unsigned char>('a' + (rid * 131 + stamp * 7) %
                                                26)};
  };
  std::atomic<u64> stamp_gen{1};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (u32 w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(9000 + w);
      std::vector<std::byte> payload(kRegionSz);
      for (int i = 0; i < kWritesPerThread; ++i) {
        const u64 rid = rng.Uniform(kSlots);
        const u64 stamp = stamp_gen.fetch_add(1);
        std::fill(payload.begin(), payload.end(), fill_for(rid, stamp));
        std::memcpy(payload.data(), &rid, 8);
        std::memcpy(payload.data() + 8, &stamp, 8);
        auto r = layer.WriteRegion(rid, payload, sim::IoMode::kForeground);
        EXPECT_TRUE(r.ok()) << r.status().ToString();
      }
    });
  }
  // Invalidator: every invalidate of a mapped region hits a fully-invalid
  // FULL zone (1 slot/zone) and takes the immediate-reset path — the other
  // half of the race.
  threads.emplace_back([&] {
    Rng rng(31337);
    for (int i = 0; i < 500; ++i) {
      EXPECT_TRUE(layer.InvalidateRegion(rng.Uniform(kSlots)).ok());
    }
  });
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      EXPECT_TRUE(layer.MaybeCollect().ok());
      std::this_thread::yield();
    }
  });
  for (u32 t = 0; t < threads.size() - 1; ++t) threads[t].join();
  stop.store(true, std::memory_order_relaxed);
  threads.back().join();

  const Status inv = layer.CheckInvariants();
  EXPECT_TRUE(inv.ok()) << inv.ToString();

  // One serial write after the racing threads drain: with an unlucky
  // interleaving the tail invalidates can unmap every region, which would
  // make the `mapped > 0` coverage check below vacuous (and flaky).
  {
    const u64 stamp = stamp_gen.fetch_add(1);
    std::vector<std::byte> payload(kRegionSz, fill_for(0, stamp));
    u64 rid0 = 0;
    std::memcpy(payload.data(), &rid0, 8);
    std::memcpy(payload.data() + 8, &stamp, 8);
    ASSERT_TRUE(layer.WriteRegion(0, payload, sim::IoMode::kForeground).ok());
  }

  // Every surviving mapping must read back the exact payload its winning
  // write stored; erased-then-reused slots would return another region's
  // bytes (or zeros) here.
  std::vector<std::byte> full(kRegionSz);
  u64 mapped = 0;
  for (u64 rid = 0; rid < kSlots; ++rid) {
    if (!layer.GetLocation(rid).has_value()) continue;
    mapped++;
    auto r = layer.ReadRegion(rid, 0, full);
    ASSERT_TRUE(r.ok()) << "rid " << rid << ": " << r.status().ToString();
    u64 got_rid = 0, got_stamp = 0;
    std::memcpy(&got_rid, full.data(), 8);
    std::memcpy(&got_stamp, full.data() + 8, 8);
    EXPECT_EQ(got_rid, rid);
    const std::byte want = fill_for(rid, got_stamp);
    for (u64 b = 16; b < kRegionSz; ++b) {
      ASSERT_EQ(full[b], want) << "rid " << rid << " byte " << b;
    }
  }
  EXPECT_GT(mapped, 0u);
  EXPECT_GT(layer.stats().zones_reset, 0u);
}

TEST(LayerConcurrencyStress, UnpublishedSlotSurvivesResetRaces) {
  RunUnpublishedSlotStress(/*use_zone_append=*/false);
}

TEST(LayerConcurrencyStress, UnpublishedSlotSurvivesResetRacesZoneAppend) {
  RunUnpublishedSlotStress(/*use_zone_append=*/true);
}

io::IoTopology StressTopology() {
  io::IoTopology t;
  t.channels = 4;
  t.planes_per_channel = 2;
  t.queue_depth = 16;
  return t;
}

// The same reserve→write→publish races, but on a multichannel topology:
// writers' publish-from-completion, the pipelined GC's batched reads and
// completion-gated writes, and invalidates now interleave across eight
// independent unit horizons instead of one serial queue.
TEST(LayerConcurrencyStress, UnpublishedSlotRacesMultichannel) {
  RunUnpublishedSlotStress(/*use_zone_append=*/false, StressTopology());
}

TEST(LayerConcurrencyStress, UnpublishedSlotRacesMultichannelZoneAppend) {
  RunUnpublishedSlotStress(/*use_zone_append=*/true, StressTopology());
}

// Out-of-order completions against the raw device: writer threads batch
// submissions to their own zones and reap the completions in reverse order
// while readers and a stats observer race. Exercises the engine's CAS-max
// horizons, inflight accounting, and cross-thread token handoff under TSan;
// payload integrity catches any submission landing in the wrong zone.
TEST(EngineStress, OutOfOrderCompletionsAcrossUnits) {
  constexpr u32 kWriters = 4;
  constexpr int kBatches = 30;
  constexpr u64 kBatch = 8;
  zns::ZnsConfig dc;
  dc.zone_count = 16;
  dc.zone_size = 256 * kKiB;
  dc.zone_capacity = 256 * kKiB;
  dc.max_open_zones = 16;
  dc.max_active_zones = 16;
  dc.store_data = true;
  dc.topology = StressTopology();
  obs::Registry registry;
  dc.metrics = &registry;
  sim::VirtualClock clock;
  zns::ZnsDevice dev(dc, &clock);

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (u32 w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      // Each writer owns 4 zones (w, w+4, w+8, w+12); append round-robin
      // so consecutive batch entries target distinct channel units.
      std::vector<std::byte> payload(4 * kKiB);
      for (int batch = 0; batch < kBatches; ++batch) {
        std::vector<zns::ZnsDevice::PendingAppend> pending;
        const SimNanos issue = clock.Now();
        for (u64 i = 0; i < kBatch; ++i) {
          const u64 zone = w + 4 * (i % 4);
          std::fill(payload.begin(), payload.end(),
                    std::byte{static_cast<unsigned char>('A' + zone)});
          auto a = dev.SubmitAppend(zone, payload, issue);
          if (a.ok()) pending.push_back(*a);
          // NoSpace once the zone fills: fine, the batch just runs short.
        }
        // Reap out of order (reverse), alternating modes.
        for (auto it = pending.rbegin(); it != pending.rend(); ++it) {
          const auto mode = (batch % 2 == 0) ? sim::IoMode::kBackground
                                             : sim::IoMode::kForeground;
          EXPECT_TRUE(dev.Complete(it->token, mode).ok());
        }
      }
    });
  }
  // Reader thread: random reads race the in-flight appends (errors such as
  // read-beyond-write-pointer are expected; data races are not).
  threads.emplace_back([&] {
    Rng rng(4242);
    std::vector<std::byte> out(4 * kKiB);
    while (!stop.load(std::memory_order_relaxed)) {
      (void)dev.Read(rng.Uniform(16), 0, out, sim::IoMode::kBackground);
      std::this_thread::yield();
    }
  });
  // Observer thread: polls the engine's horizons and queue stats.
  threads.emplace_back([&] {
    SimNanos last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const SimNanos h = dev.engine().busy_until();
      EXPECT_GE(h, last);  // horizons only move forward
      last = h;
      (void)dev.engine().in_flight();
      (void)dev.engine().max_in_flight();
      std::this_thread::yield();
    }
  });
  for (u32 t = 0; t < kWriters; ++t) threads[t].join();
  stop.store(true, std::memory_order_relaxed);
  threads[kWriters].join();
  threads[kWriters + 1].join();

  EXPECT_EQ(dev.engine().in_flight(), 0u);
  // Every zone's contents must be the single byte its owner wrote — a
  // submission routed to the wrong zone (or a torn horizon) breaks this.
  std::vector<std::byte> out(4 * kKiB);
  for (u64 zone = 0; zone < 16; ++zone) {
    const u64 wp = dev.GetZoneInfo(zone).write_pointer;
    ASSERT_EQ(wp % (4 * kKiB), 0u);
    if (wp == 0) continue;
    ASSERT_TRUE(dev.Read(zone, 0, out, sim::IoMode::kBackground).ok());
    const std::byte want{static_cast<unsigned char>('A' + zone)};
    for (u64 b = 0; b < out.size(); ++b) {
      ASSERT_EQ(out[b], want) << "zone " << zone << " byte " << b;
    }
  }
}

// The shared virtual clock under contention: Advance sums exactly and
// AdvanceTo is a monotonic max.
TEST(ConcurrentClock, AdvanceSumsAndAdvanceToIsMax) {
  sim::VirtualClock clock;
  constexpr u32 kThreads = 8;
  constexpr u64 kStepsPerThread = 20'000;
  std::vector<std::thread> pool;
  for (u32 t = 0; t < kThreads; ++t) {
    pool.emplace_back([&clock] {
      for (u64 i = 0; i < kStepsPerThread; ++i) clock.Advance(3);
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(clock.Now(), kThreads * kStepsPerThread * 3);

  const SimNanos base = clock.Now();
  pool.clear();
  for (u32 t = 0; t < kThreads; ++t) {
    pool.emplace_back([&clock, base, t] {
      for (u64 i = 0; i < 1000; ++i) {
        clock.AdvanceTo(base + t * 1000 + i);
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(clock.Now(), base + (kThreads - 1) * 1000 + 999);
}

// Metric handles under concurrent resolution + recording: one counter name
// resolved from many threads must yield one pointer-stable handle and an
// exact total.
TEST(ConcurrentMetrics, RegistryAndCountersAreExact) {
  obs::Registry registry;
  constexpr u32 kThreads = 8;
  constexpr u64 kIncs = 10'000;
  std::vector<std::thread> pool;
  for (u32 t = 0; t < kThreads; ++t) {
    pool.emplace_back([&registry] {
      obs::Counter* shared = registry.GetCounter("stress.shared");
      Histogram* h = registry.GetHistogram("stress.hist");
      for (u64 i = 0; i < kIncs; ++i) {
        shared->Inc();
        h->Record(i % 512);
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(registry.GetCounter("stress.shared")->value(),
            kThreads * kIncs);
  EXPECT_EQ(registry.GetHistogram("stress.hist")->count(), kThreads * kIncs);
}

}  // namespace
}  // namespace zncache
