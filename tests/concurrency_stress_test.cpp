// Concurrency stress tests for the sharded front-end and the thread-safe
// layers underneath it. These are the tests the CI TSan job runs: every
// scenario here must be clean under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "backends/schemes.h"
#include "cache/sharded_cache.h"
#include "common/random.h"
#include "obs/metrics.h"
#include "sim/clock.h"

namespace zncache {
namespace {

using backends::MakeScheme;
using backends::MakeShardedScheme;
using backends::SchemeKind;
using backends::SchemeParams;

constexpr SchemeKind kAllKinds[] = {SchemeKind::kBlock, SchemeKind::kFile,
                                    SchemeKind::kZone, SchemeKind::kRegion};

SchemeParams SmallParams(obs::Registry* metrics) {
  SchemeParams p;
  p.zone_size = 8 * kMiB;
  p.region_size = 512 * kKiB;
  p.cache_bytes = 64 * kMiB;  // Zone-Cache: 8 zones -> up to 4 shards
  p.min_empty_zones = 1;
  p.store_data = true;
  p.metrics = metrics;
  return p;
}

// Deterministic per-key fill byte so any thread can validate any value.
char FillFor(const std::string& key) {
  return static_cast<char>('a' + Fnv1a64(key) % 26);
}

// One deterministic mixed op sequence, replayed both against a bare
// FlashCache and a shards=1 ShardedCache below.
template <typename CacheT>
void ReplaySerial(CacheT& c, u64 ops, u64 seed) {
  Rng rng(seed);
  for (u64 i = 0; i < ops; ++i) {
    const std::string key = "k" + std::to_string(rng.Uniform(300));
    const double op = rng.NextDouble();
    if (op < 0.45) {
      ASSERT_TRUE(c.Get(key).ok());
    } else if (op < 0.85) {
      ASSERT_TRUE(
          c.Set(key, std::string(1 * kKiB + rng.Uniform(8 * kKiB), 'x'))
              .ok());
    } else {
      ASSERT_TRUE(c.Delete(key).ok());
    }
  }
}

// The shards=1 guarantee: identical op sequence against a bare FlashCache
// and a one-shard ShardedCache produces bit-identical statistics and an
// identical virtual-clock reading (the golden serial run).
TEST(ShardedCacheSerial, OneShardBitIdenticalToFlashCache) {
  for (SchemeKind kind : kAllKinds) {
    obs::Registry reg_a;
    obs::Registry reg_b;
    sim::VirtualClock clock_a;
    sim::VirtualClock clock_b;

    auto plain = MakeScheme(kind, SmallParams(&reg_a), &clock_a);
    ASSERT_TRUE(plain.ok()) << SchemeName(kind);

    SchemeParams sp = SmallParams(&reg_b);
    sp.shards = 1;
    auto sharded = MakeShardedScheme(kind, sp, &clock_b);
    ASSERT_TRUE(sharded.ok()) << SchemeName(kind);
    ASSERT_EQ(sharded->cache->shard_count(), 1u);

    ReplaySerial(*plain->cache, 4000, 7);
    ReplaySerial(*sharded->cache, 4000, 7);
    ASSERT_TRUE(plain->cache->Flush().ok());
    ASSERT_TRUE(sharded->cache->Flush().ok());

    const cache::CacheStats& a = plain->cache->stats();
    const cache::CacheStats b = sharded->cache->TotalStats();
    EXPECT_EQ(a.gets, b.gets) << SchemeName(kind);
    EXPECT_EQ(a.hits, b.hits) << SchemeName(kind);
    EXPECT_EQ(a.sets, b.sets) << SchemeName(kind);
    EXPECT_EQ(a.deletes, b.deletes) << SchemeName(kind);
    EXPECT_EQ(a.set_bytes, b.set_bytes) << SchemeName(kind);
    EXPECT_EQ(a.evicted_regions, b.evicted_regions) << SchemeName(kind);
    EXPECT_EQ(a.evicted_items, b.evicted_items) << SchemeName(kind);
    EXPECT_EQ(a.flushed_regions, b.flushed_regions) << SchemeName(kind);
    EXPECT_EQ(a.rejected_sets, b.rejected_sets) << SchemeName(kind);
    EXPECT_EQ(clock_a.Now(), clock_b.Now()) << SchemeName(kind);
    EXPECT_DOUBLE_EQ(plain->WaFactor(), sharded->WaFactor())
        << SchemeName(kind);
  }
}

// T threads of mixed Set/Get/Delete per scheme, with payload integrity:
// each key's value is filled with a byte derived from the key, so a hit
// returning any torn or misrouted payload is detected regardless of which
// thread wrote it last.
TEST(ShardedCacheStress, MixedWorkloadAllSchemes) {
  constexpr u32 kThreads = 4;
  constexpr u64 kOpsPerThread = 3000;
  for (SchemeKind kind : kAllKinds) {
    obs::Registry registry;
    sim::VirtualClock clock;
    SchemeParams p = SmallParams(&registry);
    p.shards = kThreads;
    auto scheme = MakeShardedScheme(kind, p, &clock);
    ASSERT_TRUE(scheme.ok()) << SchemeName(kind) << ": "
                             << scheme.status().ToString();
    cache::ShardedCache& c = *scheme->cache;

    std::atomic<u64> op_errors{0};
    std::atomic<u64> value_errors{0};
    std::vector<std::thread> pool;
    for (u32 t = 0; t < kThreads; ++t) {
      pool.emplace_back([&, t] {
        Rng rng(100 + t);
        std::string value_out;
        for (u64 i = 0; i < kOpsPerThread; ++i) {
          const std::string key = "k" + std::to_string(rng.Uniform(400));
          const double op = rng.NextDouble();
          if (op < 0.45) {
            auto g = c.Get(key, &value_out);
            if (!g.ok()) {
              op_errors++;
            } else if (g->hit && !value_out.empty() &&
                       value_out[0] != FillFor(key)) {
              value_errors++;
            }
          } else if (op < 0.85) {
            const u64 size = 1 * kKiB + rng.Uniform(8 * kKiB);
            if (!c.Set(key, std::string(size, FillFor(key))).ok()) {
              op_errors++;
            }
          } else {
            if (!c.Delete(key).ok()) op_errors++;
          }
        }
      });
    }
    for (auto& th : pool) th.join();

    EXPECT_EQ(op_errors.load(), 0u) << SchemeName(kind);
    EXPECT_EQ(value_errors.load(), 0u) << SchemeName(kind);
    ASSERT_TRUE(c.Flush().ok()) << SchemeName(kind);

    // Every op went through a shard; nothing was lost or double-counted.
    const cache::CacheStats total = c.TotalStats();
    EXPECT_EQ(total.gets + total.sets + total.deletes + total.rejected_sets,
              kThreads * kOpsPerThread)
        << SchemeName(kind);

    // The contention counters flow through the shared registry.
    const cache::ShardContentionStats contention = c.TotalContention();
    EXPECT_EQ(contention.ops, kThreads * kOpsPerThread + kThreads)  // +Flush
        << SchemeName(kind);
    u64 registry_ops = 0;
    for (u32 s = 0; s < kThreads; ++s) {
      obs::Counter* ops = registry.GetCounter(
          "cache.s" + std::to_string(s) + ".shard_ops");
      ASSERT_NE(ops, nullptr);
      registry_ops += ops->value();
    }
    EXPECT_EQ(registry_ops, contention.ops) << SchemeName(kind);
    EXPECT_GE(c.ShardImbalance(), 1.0) << SchemeName(kind);
  }
}

// Concurrent writers against one shard-routed key set, then a serial
// readback: whatever value won each key must be intact (no torn payloads
// across the region buffers and the device).
TEST(ShardedCacheStress, ConcurrentWritersLeaveIntactValues) {
  obs::Registry registry;
  sim::VirtualClock clock;
  SchemeParams p = SmallParams(&registry);
  p.shards = 4;
  auto scheme = MakeShardedScheme(SchemeKind::kRegion, p, &clock);
  ASSERT_TRUE(scheme.ok());
  cache::ShardedCache& c = *scheme->cache;

  constexpr u32 kThreads = 4;
  std::vector<std::thread> pool;
  for (u32 t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      Rng rng(7 + t);
      for (int i = 0; i < 2000; ++i) {
        const std::string key = "w" + std::to_string(rng.Uniform(200));
        ASSERT_TRUE(
            c.Set(key, std::string(2 * kKiB + rng.Uniform(4 * kKiB),
                                   FillFor(key)))
                .ok());
      }
    });
  }
  for (auto& th : pool) th.join();
  ASSERT_TRUE(c.Flush().ok());

  std::string v;
  u64 hits = 0;
  for (int k = 0; k < 200; ++k) {
    const std::string key = "w" + std::to_string(k);
    auto g = c.Get(key, &v);
    ASSERT_TRUE(g.ok());
    if (!g->hit) continue;
    hits++;
    for (const char ch : v) {
      ASSERT_EQ(ch, FillFor(key)) << key;
    }
  }
  EXPECT_GT(hits, 0u);
}

// The shared virtual clock under contention: Advance sums exactly and
// AdvanceTo is a monotonic max.
TEST(ConcurrentClock, AdvanceSumsAndAdvanceToIsMax) {
  sim::VirtualClock clock;
  constexpr u32 kThreads = 8;
  constexpr u64 kStepsPerThread = 20'000;
  std::vector<std::thread> pool;
  for (u32 t = 0; t < kThreads; ++t) {
    pool.emplace_back([&clock] {
      for (u64 i = 0; i < kStepsPerThread; ++i) clock.Advance(3);
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(clock.Now(), kThreads * kStepsPerThread * 3);

  const SimNanos base = clock.Now();
  pool.clear();
  for (u32 t = 0; t < kThreads; ++t) {
    pool.emplace_back([&clock, base, t] {
      for (u64 i = 0; i < 1000; ++i) {
        clock.AdvanceTo(base + t * 1000 + i);
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(clock.Now(), base + (kThreads - 1) * 1000 + 999);
}

// Metric handles under concurrent resolution + recording: one counter name
// resolved from many threads must yield one pointer-stable handle and an
// exact total.
TEST(ConcurrentMetrics, RegistryAndCountersAreExact) {
  obs::Registry registry;
  constexpr u32 kThreads = 8;
  constexpr u64 kIncs = 10'000;
  std::vector<std::thread> pool;
  for (u32 t = 0; t < kThreads; ++t) {
    pool.emplace_back([&registry] {
      obs::Counter* shared = registry.GetCounter("stress.shared");
      Histogram* h = registry.GetHistogram("stress.hist");
      for (u64 i = 0; i < kIncs; ++i) {
        shared->Inc();
        h->Record(i % 512);
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(registry.GetCounter("stress.shared")->value(),
            kThreads * kIncs);
  EXPECT_EQ(registry.GetHistogram("stress.hist")->count(), kThreads * kIncs);
}

}  // namespace
}  // namespace zncache
