#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "kv/disk_allocator.h"

namespace zncache::kv {
namespace {

TEST(DiskAllocator, StartsFullyFree) {
  DiskAllocator a(1000);
  EXPECT_EQ(a.FreeBytes(), 1000u);
  EXPECT_EQ(a.FragmentCount(), 1u);
}

TEST(DiskAllocator, AllocateAdvances) {
  DiskAllocator a(1000);
  auto o1 = a.Allocate(100);
  ASSERT_TRUE(o1.ok());
  EXPECT_EQ(*o1, 0u);
  auto o2 = a.Allocate(100);
  ASSERT_TRUE(o2.ok());
  EXPECT_EQ(*o2, 100u);
  EXPECT_EQ(a.FreeBytes(), 800u);
}

TEST(DiskAllocator, ZeroAllocationRejected) {
  DiskAllocator a(100);
  EXPECT_FALSE(a.Allocate(0).ok());
}

TEST(DiskAllocator, ExhaustionReported) {
  DiskAllocator a(100);
  ASSERT_TRUE(a.Allocate(100).ok());
  EXPECT_EQ(a.Allocate(1).status().code(), StatusCode::kNoSpace);
}

TEST(DiskAllocator, FreeEnablesReuse) {
  DiskAllocator a(100);
  auto o = a.Allocate(100);
  ASSERT_TRUE(o.ok());
  ASSERT_TRUE(a.Free(*o, 100).ok());
  EXPECT_TRUE(a.Allocate(100).ok());
}

TEST(DiskAllocator, CoalescesNeighbours) {
  DiskAllocator a(300);
  auto o1 = a.Allocate(100);
  auto o2 = a.Allocate(100);
  auto o3 = a.Allocate(100);
  ASSERT_TRUE(o1.ok() && o2.ok() && o3.ok());
  ASSERT_TRUE(a.Free(*o1, 100).ok());
  ASSERT_TRUE(a.Free(*o3, 100).ok());
  EXPECT_EQ(a.FragmentCount(), 2u);
  ASSERT_TRUE(a.Free(*o2, 100).ok());
  EXPECT_EQ(a.FragmentCount(), 1u);  // fully merged
  EXPECT_TRUE(a.Allocate(300).ok());
}

TEST(DiskAllocator, DoubleFreeDetected) {
  DiskAllocator a(100);
  auto o = a.Allocate(50);
  ASSERT_TRUE(o.ok());
  ASSERT_TRUE(a.Free(*o, 50).ok());
  EXPECT_FALSE(a.Free(*o, 50).ok());
}

TEST(DiskAllocator, OverlappingFreeDetected) {
  DiskAllocator a(100);
  ASSERT_TRUE(a.Allocate(100).ok());
  ASSERT_TRUE(a.Free(0, 50).ok());
  EXPECT_FALSE(a.Free(25, 50).ok());
}

TEST(DiskAllocator, FirstFitSkipsSmallHoles) {
  DiskAllocator a(400);
  auto o1 = a.Allocate(50);
  auto o2 = a.Allocate(200);
  ASSERT_TRUE(o1.ok() && o2.ok());
  ASSERT_TRUE(a.Free(*o1, 50).ok());  // 50-byte hole at 0; 150 free at 250
  auto big = a.Allocate(60);
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(*big, 250u);  // skipped the hole
  auto small = a.Allocate(40);
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(*small, 0u);  // reused the hole
}

TEST(DiskAllocator, ReserveCarvesExactExtent) {
  DiskAllocator a(1000);
  ASSERT_TRUE(a.Reserve(100, 50).ok());
  EXPECT_EQ(a.FreeBytes(), 950u);
  // Overlapping reservations fail.
  EXPECT_FALSE(a.Reserve(120, 10).ok());
  EXPECT_FALSE(a.Reserve(90, 20).ok());
  // Adjacent space still allocatable.
  EXPECT_TRUE(a.Reserve(150, 50).ok());
  EXPECT_TRUE(a.Reserve(0, 100).ok());
  ASSERT_TRUE(a.Free(100, 50).ok());
  EXPECT_TRUE(a.Reserve(100, 50).ok());
}

TEST(DiskAllocator, ReserveInteractsWithAllocate) {
  DiskAllocator a(1000);
  ASSERT_TRUE(a.Reserve(0, 500).ok());
  auto o = a.Allocate(400);
  ASSERT_TRUE(o.ok());
  EXPECT_GE(*o, 500u);
  EXPECT_FALSE(a.Allocate(200).ok());
}

TEST(DiskAllocator, ZeroReserveRejected) {
  DiskAllocator a(100);
  EXPECT_FALSE(a.Reserve(0, 0).ok());
}

TEST(DiskAllocator, RandomizedInvariantNoOverlapNoLeak) {
  const u64 cap = 10'000;
  DiskAllocator a(cap);
  Rng rng(61);
  struct Extent {
    u64 offset, size;
  };
  std::vector<Extent> live;
  u64 live_bytes = 0;
  for (int i = 0; i < 2000; ++i) {
    if (rng.Chance(0.6) || live.empty()) {
      const u64 size = 1 + rng.Uniform(200);
      auto o = a.Allocate(size);
      if (!o.ok()) continue;
      // No overlap with any live extent.
      for (const Extent& e : live) {
        EXPECT_TRUE(*o + size <= e.offset || e.offset + e.size <= *o)
            << "overlap at " << *o;
      }
      live.push_back({*o, size});
      live_bytes += size;
    } else {
      const size_t idx = rng.Uniform(live.size());
      ASSERT_TRUE(a.Free(live[idx].offset, live[idx].size).ok());
      live_bytes -= live[idx].size;
      live[idx] = live.back();
      live.pop_back();
    }
    EXPECT_EQ(a.FreeBytes(), cap - live_bytes);
  }
}

}  // namespace
}  // namespace zncache::kv
