// Cross-feature stress tests: long randomized runs that combine the
// persistent cache, workload generators, recovery, pools and the LSM in
// ways the feature-scoped suites do not.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "backends/middle_region_device.h"
#include "backends/schemes.h"
#include "cache/pooled_cache.h"
#include "kv/db_bench.h"
#include "workload/trace.h"
#include "workload/ycsb.h"

namespace zncache {
namespace {

using backends::MakeScheme;
using backends::SchemeKind;
using backends::SchemeParams;

TEST(EndToEndStress, PersistentCacheSurvivesWorkloadThenRestart) {
  sim::VirtualClock clock;
  SchemeParams params;
  params.zone_size = 8 * kMiB;
  params.region_size = 512 * kKiB;
  params.cache_bytes = 24 * kMiB;
  params.min_empty_zones = 1;
  params.persistent = true;
  auto scheme = MakeScheme(SchemeKind::kRegion, params, &clock);
  ASSERT_TRUE(scheme.ok());

  workload::CacheBenchConfig wl;
  wl.ops = 40'000;
  wl.warmup_ops = 0;
  wl.key_space = 6'000;
  wl.value_min = 1 * kKiB;
  wl.value_max = 8 * kKiB;
  workload::CacheBenchRunner runner(wl);
  auto r = runner.Run(*scheme->cache, clock);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(scheme->cache->Flush().ok());
  const double hit_before = [&] {
    // Probe a sample of hot keys pre-restart.
    int hits = 0;
    for (int i = 0; i < 500; ++i) {
      auto g = scheme->cache->Get(workload::CacheBenchRunner::KeyName(i));
      if (g.ok() && g->hit) hits++;
    }
    return hits / 500.0;
  }();

  // Warm restart on the same backend.
  cache::FlashCacheConfig cc;
  cc.store_values = true;
  cc.persistent = true;
  cache::FlashCache restarted(cc, scheme->device.get(), &clock);
  ASSERT_TRUE(restarted.Recover().ok());
  int hits_after = 0;
  for (int i = 0; i < 500; ++i) {
    auto g = restarted.Get(workload::CacheBenchRunner::KeyName(i));
    if (g.ok() && g->hit) hits_after++;
  }
  // Recovery must retain (at least) most of the pre-restart hot set; the
  // unflushed open-region tail is the only legitimate loss.
  EXPECT_GE(hits_after / 500.0, hit_before - 0.1);

  // The recovered cache continues to serve the workload correctly.
  auto r2 = runner.Run(restarted, clock);
  ASSERT_TRUE(r2.ok());
  EXPECT_GT(r2->hit_ratio, 0.3);
}

TEST(EndToEndStress, PooledCacheReplaysTraceDeterministically) {
  workload::CacheBenchConfig wl;
  wl.ops = 30'000;
  wl.warmup_ops = 0;
  wl.key_space = 5'000;
  wl.value_min = 1 * kKiB;
  wl.value_max = 4 * kKiB;
  const workload::Trace trace = workload::GenerateTrace(wl);

  auto run_once = [&]() {
    sim::VirtualClock clock;
    backends::MiddleRegionDeviceConfig dc;
    dc.region_count = 48;
    dc.zns.zone_count = 20;
    dc.zns.zone_size = 256 * kKiB;
    dc.zns.zone_capacity = 256 * kKiB;
    dc.middle.region_size = 64 * kKiB;
    dc.middle.min_empty_zones = 2;
    auto device =
        std::make_unique<backends::MiddleRegionDevice>(dc, &clock);
    EXPECT_TRUE(device->Init().ok());
    cache::PooledCacheConfig pc;
    pc.pools = 4;
    pc.engine.store_values = true;
    cache::PooledCache pooled(pc, device.get(), &clock);

    u64 hits = 0, gets = 0;
    std::string v;
    for (const auto& op : trace.ops()) {
      switch (op.kind) {
        case workload::TraceOp::Kind::kGet: {
          auto g = pooled.Get(op.key, &v);
          EXPECT_TRUE(g.ok());
          gets++;
          if (g.ok() && g->hit) hits++;
          break;
        }
        case workload::TraceOp::Kind::kSet:
          EXPECT_TRUE(pooled.Set(op.key, std::string(op.value_size, 't')).ok());
          break;
        case workload::TraceOp::Kind::kDelete:
          EXPECT_TRUE(pooled.Delete(op.key).ok());
          break;
      }
    }
    return std::pair<u64, u64>(hits, gets);
  };
  const auto [h1, g1] = run_once();
  const auto [h2, g2] = run_once();
  EXPECT_EQ(h1, h2);  // identical trace + deterministic stack
  EXPECT_EQ(g1, g2);
  EXPECT_GT(h1, g1 / 4);
}

TEST(EndToEndStress, LsmWithSecondaryCacheRestartsCleanly) {
  // LSM store + persistent flash tier; restart BOTH layers and verify the
  // stack still answers correctly.
  sim::VirtualClock clock;
  hdd::HddConfig hc;
  hc.capacity = 256 * kMiB;
  hdd::HddDevice disk(hc, &clock);

  SchemeParams params;
  params.zone_size = 8 * kMiB;
  params.region_size = 512 * kKiB;
  params.cache_bytes = 24 * kMiB;
  params.min_empty_zones = 1;
  params.persistent = true;
  auto scheme = MakeScheme(SchemeKind::kRegion, params, &clock);
  ASSERT_TRUE(scheme.ok());
  kv::FlashSecondaryCache secondary(scheme->cache.get());

  kv::LsmConfig lc;
  lc.memtable_bytes = 32 * kKiB;
  lc.block_bytes = 2 * kKiB;
  lc.manifest_slot_bytes = 256 * kKiB;
  lc.block_cache.capacity_bytes = 64 * kKiB;
  auto store = std::make_unique<kv::LsmStore>(lc, &disk, &clock, &secondary);

  kv::DbBenchConfig cfg;
  cfg.num_keys = 30'000;
  cfg.reads = 5'000;
  cfg.exp_range = 15.0;
  kv::DbBench bench(cfg);
  ASSERT_TRUE(bench.FillRandom(*store).ok());
  ASSERT_TRUE(bench.ReadRandom(*store, clock).ok());  // warm the tiers
  ASSERT_TRUE(scheme->cache->Flush().ok());

  // Restart: new flash engine (recovered) + new store (recovered).
  cache::FlashCacheConfig cc;
  cc.store_values = true;
  cc.persistent = true;
  auto flash2 =
      std::make_unique<cache::FlashCache>(cc, scheme->device.get(), &clock);
  ASSERT_TRUE(flash2->Recover().ok());
  kv::FlashSecondaryCache secondary2(flash2.get());
  auto store2 = std::make_unique<kv::LsmStore>(lc, &disk, &clock, &secondary2);
  ASSERT_TRUE(store2->Recover().ok());

  auto r = bench.ReadRandom(*store2, clock);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->found, 3'000u);
  // The recovered flash tier actually serves hits.
  EXPECT_GT(flash2->stats().hits, 0u);
}

TEST(EndToEndStress, YcsbOnZoneCache) {
  // Zone-Cache as secondary tier under a YCSB-A run: zero WA must hold
  // through heavy update traffic.
  sim::VirtualClock clock;
  hdd::HddConfig hc;
  hc.capacity = 256 * kMiB;
  hdd::HddDevice disk(hc, &clock);

  SchemeParams params;
  params.zone_size = 8 * kMiB;
  params.cache_bytes = 32 * kMiB;
  params.store_data = true;
  auto scheme = MakeScheme(SchemeKind::kZone, params, &clock);
  ASSERT_TRUE(scheme.ok());
  kv::FlashSecondaryCache secondary(scheme->cache.get());

  kv::LsmConfig lc;
  lc.memtable_bytes = 32 * kKiB;
  lc.block_cache.capacity_bytes = 64 * kKiB;
  kv::LsmStore store(lc, &disk, &clock, &secondary);

  workload::YcsbConfig yc;
  yc.record_count = 20'000;
  yc.operation_count = 10'000;
  workload::YcsbRunner runner(yc);
  ASSERT_TRUE(runner.Load(store).ok());
  auto r = runner.Run(workload::YcsbWorkload::kA, store, clock);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->found, r->reads);
  EXPECT_DOUBLE_EQ(scheme->WaFactor(), 1.0);  // Zone-Cache is GC-free
}

}  // namespace
}  // namespace zncache
