#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "common/random.h"
#include "f2fslite/f2fs_lite.h"

namespace zncache::f2fslite {
namespace {

zns::ZnsConfig DeviceConfig(u64 zones = 16) {
  zns::ZnsConfig c;
  c.zone_count = zones;
  c.zone_size = 256 * kKiB;
  c.zone_capacity = 256 * kKiB;
  c.max_open_zones = 6;
  c.max_active_zones = 8;
  return c;
}

class F2fsLiteTest : public ::testing::Test {
 protected:
  void Make(F2fsConfig fs_config = {}, u64 zones = 16) {
    clock_ = std::make_unique<sim::VirtualClock>();
    dev_ = std::make_unique<zns::ZnsDevice>(DeviceConfig(zones), clock_.get());
    fs_ = std::make_unique<F2fsLite>(fs_config, dev_.get());
  }

  void SetUp() override { Make(); }

  std::vector<std::byte> Blocks(u64 n, char fill) {
    return std::vector<std::byte>(n * 4096, std::byte(fill));
  }

  std::unique_ptr<sim::VirtualClock> clock_;
  std::unique_ptr<zns::ZnsDevice> dev_;
  std::unique_ptr<F2fsLite> fs_;
};

TEST_F(F2fsLiteTest, MaxFileReservesOpSpace) {
  // 15 data zones, 20% OP -> at most 12 zones of file.
  EXPECT_LE(fs_->MaxFileBytes(), 12 * 256 * kKiB);
  EXPECT_GT(fs_->MaxFileBytes(), 8 * 256 * kKiB);
}

TEST_F(F2fsLiteTest, CreateFileOnceOnly) {
  ASSERT_TRUE(fs_->CreateFile(1 * kMiB).ok());
  EXPECT_EQ(fs_->CreateFile(1 * kMiB).code(), StatusCode::kAlreadyExists);
}

TEST_F(F2fsLiteTest, CreateOversizedFileFails) {
  EXPECT_EQ(fs_->CreateFile(100 * kMiB).code(), StatusCode::kNoSpace);
}

TEST_F(F2fsLiteTest, IoBeforeCreateFails) {
  auto r = fs_->Pwrite(0, Blocks(1, 'a'));
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(F2fsLiteTest, WriteReadRoundTrip) {
  ASSERT_TRUE(fs_->CreateFile(1 * kMiB).ok());
  auto data = Blocks(4, 'q');
  ASSERT_TRUE(fs_->Pwrite(0, data).ok());
  std::vector<std::byte> out(data.size());
  ASSERT_TRUE(fs_->Pread(0, out).ok());
  EXPECT_EQ(std::memcmp(data.data(), out.data(), data.size()), 0);
}

TEST_F(F2fsLiteTest, UnalignedIoRejected) {
  ASSERT_TRUE(fs_->CreateFile(1 * kMiB).ok());
  std::vector<std::byte> odd(100);
  EXPECT_EQ(fs_->Pwrite(0, odd).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fs_->Pwrite(100, Blocks(1, 'a')).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(F2fsLiteTest, ReadHoleFails) {
  ASSERT_TRUE(fs_->CreateFile(1 * kMiB).ok());
  std::vector<std::byte> out(4096);
  EXPECT_EQ(fs_->Pread(0, out).status().code(), StatusCode::kNotFound);
}

TEST_F(F2fsLiteTest, OverwriteIsOutOfPlaceButReadsLatest) {
  ASSERT_TRUE(fs_->CreateFile(1 * kMiB).ok());
  ASSERT_TRUE(fs_->Pwrite(0, Blocks(2, '1')).ok());
  ASSERT_TRUE(fs_->Pwrite(0, Blocks(2, '2')).ok());
  std::vector<std::byte> out(2 * 4096);
  ASSERT_TRUE(fs_->Pread(0, out).ok());
  EXPECT_EQ(out[0], std::byte('2'));
  // Host wrote 4 blocks; the device saw at least those 4 (out-of-place).
  EXPECT_GE(fs_->stats().device_bytes_written, 4u * 4096);
}

TEST_F(F2fsLiteTest, BeyondFileSizeRejected) {
  ASSERT_TRUE(fs_->CreateFile(64 * kKiB).ok());
  EXPECT_EQ(fs_->Pwrite(64 * kKiB, Blocks(1, 'a')).status().code(),
            StatusCode::kOutOfRange);
}

TEST_F(F2fsLiteTest, MetadataTrafficAccounted) {
  F2fsConfig cfg;
  cfg.metadata_interval = 8;
  Make(cfg);
  ASSERT_TRUE(fs_->CreateFile(1 * kMiB).ok());
  ASSERT_TRUE(fs_->Pwrite(0, Blocks(64, 'm')).ok());
  EXPECT_GT(fs_->stats().metadata_bytes_written, 0u);
}

TEST_F(F2fsLiteTest, ChurnTriggersCleaningAndWa) {
  ASSERT_TRUE(fs_->CreateFile(fs_->MaxFileBytes()).ok());
  const u64 blocks = fs_->file_blocks();
  // Sequential base fill.
  for (u64 b = 0; b < blocks; b += 16) {
    const u64 n = std::min<u64>(16, blocks - b);
    ASSERT_TRUE(fs_->Pwrite(b * 4096, Blocks(n, 'f')).ok());
  }
  // Random overwrites: out-of-place writes + invalidations -> cleaning.
  Rng rng(21);
  for (int i = 0; i < 2000; ++i) {
    const u64 b = rng.Uniform(blocks);
    ASSERT_TRUE(fs_->Pwrite(b * 4096, Blocks(1, char('a' + i % 26))).ok());
  }
  EXPECT_GT(fs_->stats().cleaned_zones, 0u);
  EXPECT_GT(fs_->stats().WriteAmplification(), 1.0);
}

TEST_F(F2fsLiteTest, CleaningPreservesData) {
  ASSERT_TRUE(fs_->CreateFile(fs_->MaxFileBytes()).ok());
  const u64 blocks = fs_->file_blocks();
  std::vector<u8> stamp(blocks, 0);
  for (u64 b = 0; b < blocks; ++b) {
    const char fill = static_cast<char>('A' + b % 26);
    ASSERT_TRUE(fs_->Pwrite(b * 4096, Blocks(1, fill)).ok());
    stamp[b] = static_cast<u8>(fill);
  }
  Rng rng(22);
  for (int i = 0; i < 3000; ++i) {
    const u64 b = rng.Uniform(blocks);
    const char fill = static_cast<char>('a' + i % 26);
    ASSERT_TRUE(fs_->Pwrite(b * 4096, Blocks(1, fill)).ok());
    stamp[b] = static_cast<u8>(fill);
  }
  ASSERT_GT(fs_->stats().cleaned_zones, 0u);
  std::vector<std::byte> out(4096);
  for (u64 b = 0; b < blocks; ++b) {
    ASSERT_TRUE(fs_->Pread(b * 4096, out).ok()) << "block " << b;
    EXPECT_EQ(out[0], std::byte(stamp[b])) << "block " << b;
  }
}

TEST_F(F2fsLiteTest, HigherOpLowersWa) {
  auto churn = [&](double op) {
    F2fsConfig cfg;
    cfg.op_ratio = op;
    Make(cfg, 24);
    // A higher OP ratio shrinks the usable file on the same device, which
    // leaves more slack for the cleaner — emptier victims, lower WA. This
    // is exactly the Figure 4 / Table 1 tradeoff.
    const u64 file_bytes = fs_->MaxFileBytes();
    EXPECT_TRUE(fs_->CreateFile(file_bytes).ok());
    const u64 blocks = file_bytes / 4096;
    for (u64 b = 0; b < blocks; ++b) {
      EXPECT_TRUE(fs_->Pwrite(b * 4096, Blocks(1, 'x')).ok());
    }
    Rng rng(23);
    for (int i = 0; i < 4000; ++i) {
      EXPECT_TRUE(
          fs_->Pwrite(rng.Uniform(blocks) * 4096, Blocks(1, 'y')).ok());
    }
    return fs_->stats().WriteAmplification();
  };
  const double wa_10 = churn(0.10);
  const double wa_30 = churn(0.30);
  EXPECT_GT(wa_10, wa_30);
}

}  // namespace
}  // namespace zncache::f2fslite
