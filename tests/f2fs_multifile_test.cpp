// Multi-file namespace of F2fsLite: create/open/remove, isolation between
// files, capacity accounting, cleaning across files.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "common/random.h"
#include "f2fslite/f2fs_lite.h"

namespace zncache::f2fslite {
namespace {

class F2fsMultiFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    zns::ZnsConfig c;
    c.zone_count = 16;
    c.zone_size = 256 * kKiB;
    c.zone_capacity = 256 * kKiB;
    c.max_open_zones = 6;
    c.max_active_zones = 8;
    clock_ = std::make_unique<sim::VirtualClock>();
    dev_ = std::make_unique<zns::ZnsDevice>(c, clock_.get());
    fs_ = std::make_unique<F2fsLite>(F2fsConfig{}, dev_.get());
  }

  std::vector<std::byte> Blocks(u64 n, char fill) {
    return std::vector<std::byte>(n * 4096, std::byte(fill));
  }

  std::unique_ptr<sim::VirtualClock> clock_;
  std::unique_ptr<zns::ZnsDevice> dev_;
  std::unique_ptr<F2fsLite> fs_;
};

TEST_F(F2fsMultiFileTest, CreateOpenRemove) {
  auto fd = fs_->Create("alpha", 64 * kKiB);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(fs_->FileCount(), 1u);

  auto reopened = fs_->Open("alpha");
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(*reopened, *fd);

  ASSERT_TRUE(fs_->Remove("alpha").ok());
  EXPECT_EQ(fs_->FileCount(), 0u);
  EXPECT_FALSE(fs_->Open("alpha").ok());
}

TEST_F(F2fsMultiFileTest, DuplicateNameRejected) {
  ASSERT_TRUE(fs_->Create("x", 4096).ok());
  EXPECT_EQ(fs_->Create("x", 4096).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(F2fsMultiFileTest, EmptyNameRejected) {
  EXPECT_FALSE(fs_->Create("", 4096).ok());
}

TEST_F(F2fsMultiFileTest, IoOnRemovedFileFails) {
  auto fd = fs_->Create("gone", 64 * kKiB);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->Remove("gone").ok());
  EXPECT_FALSE(fs_->PwriteAt(*fd, 0, Blocks(1, 'a')).ok());
  std::vector<std::byte> out(4096);
  EXPECT_FALSE(fs_->PreadAt(*fd, 0, out).ok());
}

TEST_F(F2fsMultiFileTest, FilesAreIsolated) {
  auto a = fs_->Create("a", 128 * kKiB);
  auto b = fs_->Create("b", 128 * kKiB);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(fs_->PwriteAt(*a, 0, Blocks(4, 'A')).ok());
  ASSERT_TRUE(fs_->PwriteAt(*b, 0, Blocks(4, 'B')).ok());

  std::vector<std::byte> out(4 * 4096);
  ASSERT_TRUE(fs_->PreadAt(*a, 0, out).ok());
  EXPECT_EQ(out[0], std::byte('A'));
  ASSERT_TRUE(fs_->PreadAt(*b, 0, out).ok());
  EXPECT_EQ(out[0], std::byte('B'));
}

TEST_F(F2fsMultiFileTest, CapacitySharedAcrossFiles) {
  const u64 max = fs_->MaxFileBytes();
  ASSERT_TRUE(fs_->Create("big", max / 2).ok());
  ASSERT_TRUE(fs_->Create("big2", max / 2).ok());
  EXPECT_EQ(fs_->Create("extra", 256 * kKiB).status().code(),
            StatusCode::kNoSpace);
}

TEST_F(F2fsMultiFileTest, RemoveFreesCapacity) {
  const u64 max = fs_->MaxFileBytes();
  ASSERT_TRUE(fs_->Create("big", max).ok());
  EXPECT_FALSE(fs_->Create("more", 4096).ok());
  ASSERT_TRUE(fs_->Remove("big").ok());
  EXPECT_TRUE(fs_->Create("more", max / 2).ok());
}

TEST_F(F2fsMultiFileTest, FdSlotReusedAfterRemove) {
  auto a = fs_->Create("a", 4096);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(fs_->Remove("a").ok());
  auto b = fs_->Create("b", 4096);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, *a);  // slot reuse
}

TEST_F(F2fsMultiFileTest, FileSizeReported) {
  auto fd = fs_->Create("sized", 10'000);  // rounds up to 3 blocks
  ASSERT_TRUE(fd.ok());
  auto size = fs_->FileSizeBytes(*fd);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 3 * 4096u);
}

TEST_F(F2fsMultiFileTest, RemovedFileBlocksReclaimedByCleaner) {
  // Fill a file, remove it, then churn another file: the cleaner should
  // find the removed file's zones nearly empty (cheap cleaning).
  auto a = fs_->Create("dead", 6 * 256 * kKiB);
  ASSERT_TRUE(a.ok());
  const u64 blocks_a = 6 * 64;
  for (u64 b = 0; b < blocks_a; b += 16) {
    ASSERT_TRUE(fs_->PwriteAt(*a, b * 4096, Blocks(16, 'd')).ok());
  }
  ASSERT_TRUE(fs_->Remove("dead").ok());

  auto b = fs_->Create("live", 4 * 256 * kKiB);
  ASSERT_TRUE(b.ok());
  Rng rng(55);
  for (int i = 0; i < 2000; ++i) {
    const u64 blk = rng.Uniform(4 * 64);
    ASSERT_TRUE(fs_->PwriteAt(*b, blk * 4096, Blocks(1, 'l')).ok());
  }
  // All of "live"'s blocks must still read back.
  std::vector<std::byte> out(4096);
  u64 readable = 0;
  for (u64 blk = 0; blk < 4 * 64; ++blk) {
    if (fs_->PreadAt(*b, blk * 4096, out).ok()) readable++;
  }
  EXPECT_GT(readable, 0u);
  EXPECT_GE(fs_->stats().WriteAmplification(), 1.0);
}

TEST_F(F2fsMultiFileTest, CleaningPreservesAllFiles) {
  auto a = fs_->Create("a", 4 * 256 * kKiB);
  auto b = fs_->Create("b", 4 * 256 * kKiB);
  ASSERT_TRUE(a.ok() && b.ok());
  Rng rng(56);
  std::vector<u8> stamp_a(4 * 64, 0), stamp_b(4 * 64, 0);
  for (int i = 0; i < 4000; ++i) {
    const bool use_a = rng.Chance(0.5);
    const u64 blk = rng.Uniform(4 * 64);
    const char fill = static_cast<char>('a' + i % 26);
    ASSERT_TRUE(
        fs_->PwriteAt(use_a ? *a : *b, blk * 4096, Blocks(1, fill)).ok());
    (use_a ? stamp_a : stamp_b)[blk] = static_cast<u8>(fill);
  }
  ASSERT_GT(fs_->stats().cleaned_zones, 0u);
  std::vector<std::byte> out(4096);
  for (u64 blk = 0; blk < 4 * 64; ++blk) {
    if (stamp_a[blk] != 0) {
      ASSERT_TRUE(fs_->PreadAt(*a, blk * 4096, out).ok()) << blk;
      EXPECT_EQ(out[0], std::byte(stamp_a[blk])) << "file a block " << blk;
    }
    if (stamp_b[blk] != 0) {
      ASSERT_TRUE(fs_->PreadAt(*b, blk * 4096, out).ok()) << blk;
      EXPECT_EQ(out[0], std::byte(stamp_b[blk])) << "file b block " << blk;
    }
  }
}

}  // namespace
}  // namespace zncache::f2fslite
