// Fault-injection subsystem: plan grammar, deterministic replay, per-device
// injection behaviour, and the failure-handling contract of every layer
// above the devices (middle layer, cache engine, filesystem).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "backends/zone_region_device.h"
#include "blockssd/block_ssd.h"
#include "cache/flash_cache.h"
#include "common/random.h"
#include "f2fslite/f2fs_lite.h"
#include "fault/fault_injector.h"
#include "hdd/hdd_device.h"
#include "middle/zone_translation_layer.h"
#include "zns/zns_device.h"

namespace zncache {
namespace {

using fault::FaultAction;
using fault::FaultInjector;
using fault::FaultOp;
using fault::FaultPlan;
using fault::FaultRule;

std::vector<std::byte> Bytes(u64 n, char fill = 'd') {
  return std::vector<std::byte>(n, std::byte(fill));
}

// ---------------------------------------------------------- plan parser ----

TEST(FaultPlanParse, EmptySpecIsEmptyPlan) {
  auto plan = FaultPlan::Parse("");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->seed, 1u);
  EXPECT_EQ(plan->reset_budget, 0u);
  EXPECT_TRUE(plan->rules.empty());
}

TEST(FaultPlanParse, FullGrammar) {
  auto plan = FaultPlan::Parse(
      "seed=7; reset_budget=200;"
      "offline:zone=3,op=20000;"
      "ioerr:kind=read,p=0.001;"
      "latency:ns=5ms,p=0.5,count=10;"
      "torn:zone=2;"
      "readonly:zone=1,time=2s;"
      "resetfail:count=3");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->seed, 7u);
  EXPECT_EQ(plan->reset_budget, 200u);
  ASSERT_EQ(plan->rules.size(), 6u);

  EXPECT_EQ(plan->rules[0].action, FaultAction::kZoneOffline);
  EXPECT_EQ(plan->rules[0].zone, 3u);
  EXPECT_EQ(plan->rules[0].at_op, 20'000u);

  EXPECT_EQ(plan->rules[1].action, FaultAction::kIoError);
  EXPECT_EQ(plan->rules[1].scope, FaultOp::kRead);
  EXPECT_DOUBLE_EQ(plan->rules[1].probability, 0.001);
  EXPECT_EQ(plan->rules[1].MaxFires(), ~0ULL);  // unbounded p-rule

  EXPECT_EQ(plan->rules[2].action, FaultAction::kLatency);
  EXPECT_EQ(plan->rules[2].latency_ns, 5u * 1000 * 1000);
  EXPECT_EQ(plan->rules[2].MaxFires(), 10u);

  // Torn writes force write scope; reset failures force reset scope.
  EXPECT_EQ(plan->rules[3].scope, FaultOp::kWrite);
  EXPECT_EQ(plan->rules[4].at_time, 2u * 1000 * 1000 * 1000);
  EXPECT_EQ(plan->rules[5].scope, FaultOp::kReset);
  EXPECT_EQ(plan->rules[5].MaxFires(), 3u);
}

TEST(FaultPlanParse, CommentsAndNewlines) {
  auto plan = FaultPlan::Parse("# availability drill\nseed=3\nioerr:op=5\n");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->seed, 3u);
  ASSERT_EQ(plan->rules.size(), 1u);
  EXPECT_EQ(plan->rules[0].at_op, 5u);
}

TEST(FaultPlanParse, RejectsBadInput) {
  EXPECT_FALSE(FaultPlan::Parse("explode:zone=1").ok());  // unknown action
  EXPECT_FALSE(FaultPlan::Parse("ioerr:wat=1").ok());     // unknown param
  EXPECT_FALSE(FaultPlan::Parse("ioerr:zone=abc").ok());  // bad number
  EXPECT_FALSE(FaultPlan::Parse("ioerr:p=1.5").ok());     // p out of range
  EXPECT_FALSE(FaultPlan::Parse("latency:p=0.5").ok());   // latency needs ns=
  EXPECT_FALSE(FaultPlan::Parse("seed=x").ok());
  EXPECT_FALSE(FaultPlan::Parse("ioerr:kind=scrub").ok());
}

// ---------------------------------------------------------- determinism ----

// Drive an injector through a synthetic but deterministic op sequence.
void DriveOps(FaultInjector& inj, int n) {
  for (int i = 0; i < n; ++i) {
    const FaultOp op = (i % 3 == 0)   ? FaultOp::kWrite
                       : (i % 3 == 1) ? FaultOp::kRead
                                      : FaultOp::kReset;
    (void)inj.Evaluate(op, /*now=*/i * 1000, /*zone=*/i % 8,
                       /*bytes=*/4 * kKiB);
  }
}

TEST(FaultDeterminism, SameSeedSamePlanSameFingerprint) {
  auto plan = FaultPlan::Parse(
      "seed=9;ioerr:p=0.3,count=5;latency:p=0.2,ns=1ms;torn:p=0.1");
  ASSERT_TRUE(plan.ok());
  FaultInjector a(*plan), b(*plan);
  DriveOps(a, 500);
  DriveOps(b, 500);
  EXPECT_GT(a.stats().TotalInjected(), 0u);
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  EXPECT_EQ(a.stats().io_errors, b.stats().io_errors);
  EXPECT_EQ(a.stats().torn_writes, b.stats().torn_writes);
  EXPECT_EQ(a.stats().latency_spikes, b.stats().latency_spikes);
  EXPECT_EQ(a.log().size(), b.log().size());
  EXPECT_EQ(a.ToJson(), b.ToJson());
}

TEST(FaultDeterminism, NoFiresLeavesFingerprintAtBasis) {
  FaultInjector inj(FaultPlan{});
  const u64 before = inj.Fingerprint();
  DriveOps(inj, 200);
  EXPECT_EQ(inj.stats().ops_seen, 200u);
  EXPECT_EQ(inj.stats().TotalInjected(), 0u);
  EXPECT_EQ(inj.Fingerprint(), before);
}

TEST(FaultDeterminism, JsonHasStatsFingerprintAndFires) {
  auto plan = FaultPlan::Parse("seed=4;ioerr:op=2");
  ASSERT_TRUE(plan.ok());
  FaultInjector inj(*plan);
  DriveOps(inj, 10);
  const std::string j = inj.ToJson();
  EXPECT_NE(j.find("\"stats\""), std::string::npos);
  EXPECT_NE(j.find("\"fingerprint\""), std::string::npos);
  EXPECT_NE(j.find("\"fired\""), std::string::npos);
  EXPECT_NE(j.find("ioerr"), std::string::npos);
}

// ------------------------------------------------------ ZNS device hooks ----

class ZnsFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { Build(FaultPlan{}); }

  void Build(FaultPlan plan) {
    injector_ = std::make_unique<FaultInjector>(std::move(plan));
    zns::ZnsConfig zc;
    zc.zone_count = 8;
    zc.zone_size = 256 * kKiB;
    zc.zone_capacity = 256 * kKiB;
    zc.max_open_zones = 8;
    zc.max_active_zones = 8;
    zc.faults = injector_.get();
    dev_ = std::make_unique<zns::ZnsDevice>(zc, &clock_);
  }

  Status Write(u64 zone, u64 bytes, char fill = 'w') {
    const u64 wp = dev_->GetZoneInfo(zone).write_pointer;
    auto r = dev_->Write(zone, wp, Bytes(bytes, fill));
    return r.ok() ? Status::Ok() : r.status();
  }

  sim::VirtualClock clock_;
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<zns::ZnsDevice> dev_;
};

TEST_F(ZnsFaultTest, ArmedIoErrorFailsOneOp) {
  ASSERT_TRUE(Write(0, 4 * kKiB).ok());
  injector_->Arm(FaultRule{.action = FaultAction::kIoError});
  EXPECT_EQ(Write(0, 4 * kKiB).code(), StatusCode::kUnavailable);
  // The op never happened: write pointer unchanged, next write succeeds.
  EXPECT_EQ(dev_->GetZoneInfo(0).write_pointer, 4 * kKiB);
  EXPECT_TRUE(Write(0, 4 * kKiB).ok());
  EXPECT_EQ(injector_->stats().io_errors, 1u);
}

TEST_F(ZnsFaultTest, TornWriteAdvancesPointerAndFailsWithCorruption) {
  injector_->Arm(FaultRule{.action = FaultAction::kTornWrite});
  EXPECT_EQ(Write(1, 16 * kKiB).code(), StatusCode::kCorruption);
  const u64 wp = dev_->GetZoneInfo(1).write_pointer;
  EXPECT_LT(wp, 16 * kKiB);  // only a prefix landed
  EXPECT_EQ(dev_->stats().flash_bytes_written, wp);
  EXPECT_EQ(injector_->stats().torn_writes, 1u);
  // The zone keeps working from the torn pointer.
  EXPECT_TRUE(Write(1, 4 * kKiB).ok());
  EXPECT_EQ(dev_->GetZoneInfo(1).write_pointer, wp + 4 * kKiB);
}

TEST_F(ZnsFaultTest, LatencySpikeSlowsTheOp) {
  ASSERT_TRUE(Write(0, 4 * kKiB).ok());
  const SimNanos spike = 5 * 1000 * 1000;
  FaultRule r;
  r.action = FaultAction::kLatency;
  r.latency_ns = spike;
  injector_->Arm(r);
  const u64 wp = dev_->GetZoneInfo(0).write_pointer;
  auto slow = dev_->Write(0, wp, Bytes(4 * kKiB));
  ASSERT_TRUE(slow.ok());
  EXPECT_GE(slow->latency, spike);
  EXPECT_EQ(injector_->stats().latency_spikes, 1u);
}

TEST_F(ZnsFaultTest, OfflineZoneLosesDataAndCountsAsDegraded) {
  ASSERT_TRUE(Write(2, 8 * kKiB).ok());
  FaultRule r;
  r.action = FaultAction::kZoneOffline;
  r.zone = 2;
  injector_->Arm(r);
  // The transition fires on the next device op, whatever zone it targets.
  ASSERT_TRUE(Write(0, 4 * kKiB).ok());
  EXPECT_EQ(dev_->GetZoneInfo(2).state, zns::ZoneState::kOffline);
  EXPECT_FALSE(dev_->GetZoneInfo(2).IsResettable());
  EXPECT_EQ(dev_->degraded_zone_count(), 1u);

  std::vector<std::byte> out(4 * kKiB);
  EXPECT_EQ(dev_->Read(2, 0, out).status().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(Write(2, 4 * kKiB).ok());
  EXPECT_FALSE(dev_->Reset(2).ok());
}

TEST_F(ZnsFaultTest, ReadOnlyZoneStaysReadable) {
  ASSERT_TRUE(Write(3, 8 * kKiB, 'r').ok());
  FaultRule r;
  r.action = FaultAction::kZoneReadOnly;
  r.zone = 3;
  injector_->Arm(r);
  ASSERT_TRUE(Write(0, 4 * kKiB).ok());
  EXPECT_EQ(dev_->GetZoneInfo(3).state, zns::ZoneState::kReadOnly);

  std::vector<std::byte> out(8 * kKiB);
  ASSERT_TRUE(dev_->Read(3, 0, out).ok());
  EXPECT_EQ(out[0], std::byte('r'));
  EXPECT_FALSE(Write(3, 4 * kKiB).ok());
  EXPECT_FALSE(dev_->Reset(3).ok());
}

TEST_F(ZnsFaultTest, ResetFailureIsTransient) {
  ASSERT_TRUE(Write(4, 4 * kKiB).ok());
  injector_->Arm(FaultRule{.action = FaultAction::kResetFail});
  EXPECT_EQ(dev_->Reset(4).code(), StatusCode::kUnavailable);
  // Transient: the zone is untouched and the retry succeeds.
  EXPECT_TRUE(dev_->GetZoneInfo(4).IsResettable());
  EXPECT_TRUE(dev_->Reset(4).ok());
  EXPECT_EQ(dev_->GetZoneInfo(4).state, zns::ZoneState::kEmpty);
}

TEST_F(ZnsFaultTest, ResetBudgetWearsZoneOut) {
  auto plan = FaultPlan::Parse("seed=1;reset_budget=2");
  ASSERT_TRUE(plan.ok());
  Build(*plan);
  for (int cycle = 0; cycle < 2; ++cycle) {
    ASSERT_TRUE(Write(0, 4 * kKiB).ok());
    ASSERT_TRUE(dev_->Reset(0).ok());
  }
  ASSERT_TRUE(Write(0, 4 * kKiB).ok());
  EXPECT_FALSE(dev_->Reset(0).ok());  // budget exhausted: media worn out
  EXPECT_EQ(dev_->GetZoneInfo(0).state, zns::ZoneState::kReadOnly);
  EXPECT_EQ(injector_->stats().wearouts, 1u);
  EXPECT_EQ(dev_->degraded_zone_count(), 1u);
}

TEST_F(ZnsFaultTest, ZeroFaultPlanMatchesNullInjector) {
  // A wired injector with an empty plan must be behaviourally identical to
  // no injector at all (the zero-fault baseline stays byte-identical).
  sim::VirtualClock plain_clock;
  zns::ZnsConfig zc = dev_->config();
  zc.faults = nullptr;
  zns::ZnsDevice plain(zc, &plain_clock);

  Rng rng(77);
  for (int i = 0; i < 300; ++i) {
    const u64 zone = rng.Uniform(8);
    if (rng.Chance(0.2)) {
      const Status a = dev_->Reset(zone);
      const Status b = plain.Reset(zone);
      EXPECT_EQ(a.code(), b.code());
      continue;
    }
    const u64 wp = dev_->GetZoneInfo(zone).write_pointer;
    auto a = dev_->Write(zone, wp, Bytes(4 * kKiB));
    auto b = plain.Write(zone, wp, Bytes(4 * kKiB));
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) {
      EXPECT_EQ(a->latency, b->latency);
    }
  }
  EXPECT_EQ(dev_->stats().host_bytes_written, plain.stats().host_bytes_written);
  EXPECT_EQ(dev_->stats().zone_resets, plain.stats().zone_resets);
  EXPECT_GT(injector_->ops_seen(), 0u);
  EXPECT_EQ(injector_->stats().TotalInjected(), 0u);
}

// ------------------------------------------- block SSD / HDD device hooks ----

TEST(BlockSsdFaults, ArmedIoErrorAndTornWrite) {
  sim::VirtualClock clock;
  FaultInjector inj(FaultPlan{});
  blockssd::BlockSsdConfig bc;
  bc.logical_capacity = 8 * kMiB;
  bc.pages_per_block = 16;
  bc.faults = &inj;
  blockssd::BlockSsd ssd(bc, &clock);

  inj.Arm(FaultRule{.action = FaultAction::kIoError});
  EXPECT_EQ(ssd.Write(0, Bytes(16 * kKiB)).status().code(),
            StatusCode::kUnavailable);
  ASSERT_TRUE(ssd.Write(0, Bytes(16 * kKiB, 'a')).ok());

  inj.Arm(FaultRule{.action = FaultAction::kTornWrite});
  EXPECT_EQ(ssd.Write(0, Bytes(16 * kKiB, 'b')).status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(inj.stats().torn_writes, 1u);
  // The device keeps serving reads and writes afterwards.
  std::vector<std::byte> out(4 * kKiB);
  EXPECT_TRUE(ssd.Read(0, out).ok());
  EXPECT_TRUE(ssd.Write(0, Bytes(16 * kKiB, 'c')).ok());
}

TEST(HddFaults, ArmedIoErrorAndLatency) {
  sim::VirtualClock clock;
  FaultInjector inj(FaultPlan{});
  hdd::HddConfig hc;
  hc.capacity = 8 * kMiB;
  hc.faults = &inj;
  hdd::HddDevice disk(hc, &clock);

  inj.Arm(FaultRule{.action = FaultAction::kIoError});
  EXPECT_EQ(disk.Write(0, Bytes(4 * kKiB)).status().code(),
            StatusCode::kUnavailable);
  ASSERT_TRUE(disk.Write(0, Bytes(4 * kKiB)).ok());

  FaultRule r;
  r.action = FaultAction::kLatency;
  r.latency_ns = 50 * 1000 * 1000;
  inj.Arm(r);
  std::vector<std::byte> out(4 * kKiB);
  auto rd = disk.Read(0, out);
  ASSERT_TRUE(rd.ok());
  EXPECT_GE(rd->latency, static_cast<SimNanos>(r.latency_ns));
  EXPECT_EQ(inj.stats().latency_spikes, 1u);
}

// ------------------------------------------------- middle-layer handling ----

class MiddleFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    zns::ZnsConfig zc;
    zc.zone_count = 10;
    zc.zone_size = 256 * kKiB;
    zc.zone_capacity = 256 * kKiB;
    zc.max_open_zones = 6;
    zc.max_active_zones = 8;
    dev_ = std::make_unique<zns::ZnsDevice>(zc, &clock_);
    middle::MiddleLayerConfig mc;
    mc.region_size = 64 * kKiB;
    mc.region_slots = 24;
    mc.open_zones = 2;
    mc.min_empty_zones = 2;
    layer_ = std::make_unique<middle::ZoneTranslationLayer>(mc, dev_.get());
    ASSERT_TRUE(layer_->ValidateConfig().ok());
  }

  Status Write(u64 rid, char fill) {
    std::vector<std::byte> data(64 * kKiB, std::byte(fill));
    auto r = layer_->WriteRegion(rid, data, sim::IoMode::kForeground);
    return r.ok() ? Status::Ok() : r.status();
  }

  sim::VirtualClock clock_;
  std::unique_ptr<zns::ZnsDevice> dev_;
  std::unique_ptr<middle::ZoneTranslationLayer> layer_;
};

TEST_F(MiddleFaultTest, OfflineZoneRegionsAreLost) {
  for (u64 r = 0; r < 12; ++r) ASSERT_TRUE(Write(r, 'a').ok());
  const auto loc = layer_->GetLocation(0);
  ASSERT_TRUE(loc.has_value());
  const u64 dead_zone = loc->zone;
  u64 dead_regions = 0;
  for (u64 r = 0; r < 12; ++r) {
    if (layer_->GetLocation(r)->zone == dead_zone) dead_regions++;
  }

  ASSERT_TRUE(dev_->TransitionZone(dead_zone, zns::ZoneState::kOffline).ok());
  ASSERT_TRUE(layer_->MaybeCollect().ok());  // runs the failure scan

  EXPECT_EQ(layer_->stats().zones_retired, 1u);
  EXPECT_EQ(layer_->stats().lost_regions, dead_regions);
  EXPECT_FALSE(layer_->GetLocation(0).has_value());

  // Lost regions read as permanently gone, and rewriting them remaps to a
  // healthy zone.
  std::vector<std::byte> out(64);
  EXPECT_EQ(layer_->ReadRegion(0, 0, out).status().code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(Write(0, 'b').ok());
  EXPECT_NE(layer_->GetLocation(0)->zone, dead_zone);
  ASSERT_TRUE(layer_->ReadRegion(0, 0, out).ok());
  EXPECT_EQ(out[0], std::byte('b'));
}

TEST_F(MiddleFaultTest, ReadOnlyZoneIsEvacuated) {
  for (u64 r = 0; r < 12; ++r) ASSERT_TRUE(Write(r, static_cast<char>('A' + r)).ok());
  const u64 ro_zone = layer_->GetLocation(0)->zone;
  u64 victims = 0;
  for (u64 r = 0; r < 12; ++r) {
    if (layer_->GetLocation(r)->zone == ro_zone) victims++;
  }

  ASSERT_TRUE(dev_->TransitionZone(ro_zone, zns::ZoneState::kReadOnly).ok());
  ASSERT_TRUE(layer_->HandleZoneFaults().ok());

  EXPECT_EQ(layer_->stats().evacuated_regions, victims);
  EXPECT_EQ(layer_->stats().zones_retired, 1u);
  // Every evacuated region moved and kept its contents.
  std::vector<std::byte> out(64);
  for (u64 r = 0; r < 12; ++r) {
    ASSERT_TRUE(layer_->GetLocation(r).has_value()) << "region " << r;
    EXPECT_NE(layer_->GetLocation(r)->zone, ro_zone) << "region " << r;
    ASSERT_TRUE(layer_->ReadRegion(r, 0, out).ok()) << "region " << r;
    EXPECT_EQ(out[0], std::byte(static_cast<char>('A' + r)));
  }
}

TEST_F(MiddleFaultTest, FailureScanIsIdempotent) {
  for (u64 r = 0; r < 8; ++r) ASSERT_TRUE(Write(r, 'a').ok());
  const u64 zone = layer_->GetLocation(0)->zone;
  ASSERT_TRUE(dev_->TransitionZone(zone, zns::ZoneState::kOffline).ok());
  ASSERT_TRUE(layer_->HandleZoneFaults().ok());
  const u64 retired = layer_->stats().zones_retired;
  const u64 lost = layer_->stats().lost_regions;
  ASSERT_TRUE(layer_->HandleZoneFaults().ok());
  ASSERT_TRUE(layer_->MaybeCollect().ok());
  EXPECT_EQ(layer_->stats().zones_retired, retired);
  EXPECT_EQ(layer_->stats().lost_regions, lost);
}

TEST_F(MiddleFaultTest, GcSkipsDegradedZonesUnderChurn) {
  for (u64 r = 0; r < 12; ++r) ASSERT_TRUE(Write(r, 'a').ok());
  const u64 dead = layer_->GetLocation(0)->zone;
  ASSERT_TRUE(dev_->TransitionZone(dead, zns::ZoneState::kOffline).ok());
  ASSERT_TRUE(layer_->HandleZoneFaults().ok());
  const u64 resets_at_death = dev_->GetZoneInfo(dead).reset_count;

  // Churn rewrites across the shrunken device: GC must keep reclaiming
  // space without ever picking the dead zone as a victim.
  Rng rng(55);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(Write(rng.Uniform(24), static_cast<char>('a' + i % 26)).ok())
        << "iteration " << i;
  }
  EXPECT_GT(layer_->stats().zones_reset, 0u);
  EXPECT_EQ(dev_->GetZoneInfo(dead).state, zns::ZoneState::kOffline);
  EXPECT_EQ(dev_->GetZoneInfo(dead).reset_count, resets_at_death);
}

TEST_F(MiddleFaultTest, TornWriteRemapsToFreshZone) {
  // Wire an injector after construction is impossible; rebuild the stack
  // with one attached instead.
  FaultInjector inj(FaultPlan{});
  zns::ZnsConfig zc = dev_->config();
  zc.faults = &inj;
  sim::VirtualClock clock;
  zns::ZnsDevice dev(zc, &clock);
  middle::MiddleLayerConfig mc = layer_->config();
  middle::ZoneTranslationLayer layer(mc, &dev);

  std::vector<std::byte> data(64 * kKiB, std::byte('t'));
  ASSERT_TRUE(layer.WriteRegion(1, data, sim::IoMode::kForeground).ok());

  inj.Arm(FaultRule{.action = FaultAction::kTornWrite});
  // The torn write fails underneath, but the layer retries on a fresh zone
  // and the host-visible write succeeds.
  auto w = layer.WriteRegion(2, data, sim::IoMode::kForeground);
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  EXPECT_GE(layer.stats().write_retries, 1u);
  std::vector<std::byte> out(64);
  ASSERT_TRUE(layer.ReadRegion(2, 0, out).ok());
  EXPECT_EQ(out[0], std::byte('t'));
}

// ------------------------------------------------- cache engine handling ----

class CacheFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    injector_ = std::make_unique<FaultInjector>(FaultPlan{});
    backends::ZoneRegionDeviceConfig c;
    c.region_count = 8;
    c.zns.zone_count = 8;
    c.zns.zone_size = 256 * kKiB;
    c.zns.zone_capacity = 256 * kKiB;
    c.zns.max_open_zones = 8;
    c.zns.max_active_zones = 8;
    c.zns.faults = injector_.get();
    device_ = std::make_unique<backends::ZoneRegionDevice>(c, &clock_);
    cache::FlashCacheConfig cc;
    cc.store_values = true;
    cache_ = std::make_unique<cache::FlashCache>(cc, device_.get(), &clock_);
  }

  // Insert synthetic items until `sealed` regions have been flushed.
  void FillRegions(u64 sealed) {
    int i = 0;
    while (cache_->stats().flushed_regions < sealed) {
      ASSERT_TRUE(
          cache_->Set("key" + std::to_string(i++), std::string(30 * kKiB, 'v'))
              .ok());
      ASSERT_LT(i, 1000) << "cache never sealed " << sealed << " regions";
    }
    keys_ = i;
  }

  sim::VirtualClock clock_;
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<backends::ZoneRegionDevice> device_;
  std::unique_ptr<cache::FlashCache> cache_;
  int keys_ = 0;
};

TEST_F(CacheFaultTest, OfflineZoneBecomesMissesNeverErrors) {
  FillRegions(3);
  FaultRule r;
  r.action = FaultAction::kZoneOffline;
  r.zone = 0;  // region 0 == zone 0 for the Zone-Cache backend
  injector_->Arm(r);

  u64 hits = 0, misses = 0;
  std::string v;
  for (int i = 0; i < keys_; ++i) {
    auto g = cache_->Get("key" + std::to_string(i), &v);
    ASSERT_TRUE(g.ok()) << g.status().ToString();  // never an op failure
    g->hit ? hits++ : misses++;
  }
  EXPECT_GT(misses, 0u);  // region 0's items are gone
  EXPECT_GT(hits, 0u);    // everyone else still served
  EXPECT_EQ(cache_->stats().region_lost, 1u);
  EXPECT_GT(cache_->stats().lost_items, 0u);
  // The dead zone's slot is retired, not reused.
  EXPECT_EQ(cache_->stats().retired_regions, 1u);
  EXPECT_FALSE(device_->RegionUsable(0));

  // The cache keeps running (and refilling) at reduced capacity.
  for (int i = 0; i < keys_; ++i) {
    ASSERT_TRUE(
        cache_->Set("key" + std::to_string(i), std::string(30 * kKiB, 'n'))
            .ok());
  }
}

TEST_F(CacheFaultTest, FailedFlushIsDegradedNotFatal) {
  // Every write (and the retry) fails while the rule has fires left.
  FaultRule r;
  r.action = FaultAction::kIoError;
  r.scope = FaultOp::kWrite;
  r.count = 4;
  injector_->Arm(r);

  // Filling one region forces a flush; the flush fails, the region's items
  // are dropped, and the Set path itself reports success (degraded mode).
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        cache_->Set("k" + std::to_string(i), std::string(30 * kKiB, 'x')).ok());
  }
  EXPECT_GE(cache_->stats().flush_failures, 1u);
  EXPECT_GE(cache_->stats().region_lost, 1u);
  // A transient write error does not retire the slot.
  EXPECT_EQ(cache_->stats().retired_regions, 0u);

  // After the fault burst the cache seals regions normally again.
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        cache_->Set("r" + std::to_string(i), std::string(30 * kKiB, 'y')).ok());
  }
  EXPECT_GT(cache_->stats().flushed_regions, 0u);
}

TEST_F(CacheFaultTest, TransientReadErrorIsAMissAndKeepsTheItem) {
  FillRegions(2);
  // Find a key that is served from flash (not the open buffer).
  // After FillRegions all earlier keys live in sealed regions.
  FaultRule r;
  r.action = FaultAction::kIoError;
  r.scope = FaultOp::kRead;
  injector_->Arm(r);

  auto g1 = cache_->Get("key0");
  ASSERT_TRUE(g1.ok());
  EXPECT_FALSE(g1->hit);  // transient failure served as a miss
  EXPECT_EQ(cache_->stats().read_errors, 1u);
  EXPECT_EQ(cache_->stats().region_lost, 0u);  // not treated as data loss

  auto g2 = cache_->Get("key0");
  ASSERT_TRUE(g2.ok());
  EXPECT_TRUE(g2->hit);  // the item survived the transient error
}

// ----------------------------------------------------- f2fslite handling ----

class F2fsFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    injector_ = std::make_unique<FaultInjector>(FaultPlan{});
    zns::ZnsConfig zc;
    zc.zone_count = 12;
    zc.zone_size = 256 * kKiB;
    zc.zone_capacity = 256 * kKiB;
    zc.max_open_zones = 8;
    zc.max_active_zones = 10;
    zc.faults = injector_.get();
    dev_ = std::make_unique<zns::ZnsDevice>(zc, &clock_);
    f2fslite::F2fsConfig fc;
    fc.min_free_zones = 2;
    fs_ = std::make_unique<f2fslite::F2fsLite>(fc, dev_.get());
    ASSERT_TRUE(fs_->CreateFile(fs_->MaxFileBytes()).ok());
  }

  sim::VirtualClock clock_;
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<zns::ZnsDevice> dev_;
  std::unique_ptr<f2fslite::F2fsLite> fs_;
};

TEST_F(F2fsFaultTest, WriteRetriesOnLogZoneFailure) {
  ASSERT_TRUE(fs_->Pwrite(0, Bytes(16 * kKiB, 'a')).ok());
  FaultRule r;
  r.action = FaultAction::kIoError;
  r.scope = FaultOp::kWrite;
  injector_->Arm(r);
  // The failed append abandons the log zone and retries elsewhere; the
  // host-visible write succeeds.
  auto w = fs_->Pwrite(32 * kKiB, Bytes(16 * kKiB, 'b'));
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  EXPECT_GE(fs_->stats().write_retries, 1u);
  std::vector<std::byte> out(16 * kKiB);
  ASSERT_TRUE(fs_->Pread(32 * kKiB, out).ok());
  EXPECT_EQ(out[0], std::byte('b'));
}

TEST_F(F2fsFaultTest, OfflineZoneBlocksReadAsNotFoundHoles) {
  // Fill several zones' worth of file data.
  const u64 chunk = 64 * kKiB;
  const u64 chunks = (3 * 256 * kKiB) / chunk;  // ~3 zones of data
  for (u64 i = 0; i < chunks; ++i) {
    ASSERT_TRUE(fs_->Pwrite(i * chunk, Bytes(chunk, 'f')).ok());
  }
  // Zone 0 is metadata; zone 1 holds early file blocks.
  ASSERT_TRUE(dev_->TransitionZone(1, zns::ZoneState::kOffline).ok());

  u64 holes = 0, served = 0;
  std::vector<std::byte> out(chunk);
  for (u64 i = 0; i < chunks; ++i) {
    auto rd = fs_->Pread(i * chunk, out);
    if (rd.ok()) {
      served++;
      EXPECT_EQ(out[0], std::byte('f'));
    } else {
      EXPECT_EQ(rd.status().code(), StatusCode::kNotFound) << "chunk " << i;
      holes++;
    }
  }
  EXPECT_GT(holes, 0u);
  EXPECT_GT(served, 0u);
  EXPECT_GT(fs_->stats().lost_blocks, 0u);

  // A hole can be rewritten: the data lands in a healthy zone and the read
  // succeeds again (the cache-on-top refills exactly this way).
  for (u64 i = 0; i < chunks; ++i) {
    ASSERT_TRUE(fs_->Pwrite(i * chunk, Bytes(chunk, 'g')).ok());
    ASSERT_TRUE(fs_->Pread(i * chunk, out).ok());
    EXPECT_EQ(out[0], std::byte('g'));
  }
}

}  // namespace
}  // namespace zncache
