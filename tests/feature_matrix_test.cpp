// Feature-combination coverage: options that interact (persistence x
// zone-append, persistence x reinsertion, GC under persistent strides,
// flush-buffer backpressure edges, filesystem path-cost accounting).
#include <gtest/gtest.h>

#include <memory>

#include "backends/middle_region_device.h"
#include "backends/schemes.h"
#include "common/random.h"
#include "f2fslite/f2fs_lite.h"
#include "middle/zone_translation_layer.h"

namespace zncache {
namespace {

// ---- middle layer: persist_headers x zone-append x GC -------------------

class PersistAppendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    zns::ZnsConfig zc;
    zc.zone_count = 12;
    zc.zone_size = 1 * kMiB;
    zc.zone_capacity = 1 * kMiB;
    zc.max_open_zones = 6;
    zc.max_active_zones = 8;
    dev_ = std::make_unique<zns::ZnsDevice>(zc, &clock_);
    middle::MiddleLayerConfig mc;
    mc.region_size = 64 * kKiB;
    mc.region_slots = 80;
    mc.open_zones = 2;
    mc.min_empty_zones = 1;
    mc.persist_headers = true;
    mc.use_zone_append = true;
    layer_ = std::make_unique<middle::ZoneTranslationLayer>(mc, dev_.get());
    ASSERT_TRUE(layer_->ValidateConfig().ok());
  }

  Status Write(middle::ZoneTranslationLayer& layer, u64 rid, char fill) {
    std::vector<std::byte> data(64 * kKiB, std::byte(fill));
    auto r = layer.WriteRegion(rid, data, sim::IoMode::kForeground);
    return r.ok() ? Status::Ok() : r.status();
  }

  sim::VirtualClock clock_;
  std::unique_ptr<zns::ZnsDevice> dev_;
  std::unique_ptr<middle::ZoneTranslationLayer> layer_;
};

TEST_F(PersistAppendTest, AppendWithHeadersRoundTrips) {
  for (u64 r = 0; r < 40; ++r) {
    ASSERT_TRUE(Write(*layer_, r, static_cast<char>('a' + r % 26)).ok());
  }
  std::vector<std::byte> out(8);
  for (u64 r = 0; r < 40; ++r) {
    ASSERT_TRUE(layer_->ReadRegion(r, 0, out).ok()) << r;
    EXPECT_EQ(out[0], std::byte(static_cast<char>('a' + r % 26)));
  }
  EXPECT_GT(dev_->stats().append_ops, 0u);
}

TEST_F(PersistAppendTest, GcUnderPersistentStridesKeepsData) {
  Rng rng(601);
  std::vector<int> stamp(80, -1);
  for (int i = 0; i < 600; ++i) {
    const u64 rid = rng.Uniform(80);
    const char fill = static_cast<char>('a' + i % 26);
    ASSERT_TRUE(Write(*layer_, rid, fill).ok());
    stamp[rid] = fill;
  }
  ASSERT_GT(layer_->stats().gc_runs, 0u);
  std::vector<std::byte> out(8);
  for (u64 rid = 0; rid < 80; ++rid) {
    if (stamp[rid] < 0) continue;
    ASSERT_TRUE(layer_->ReadRegion(rid, 0, out).ok()) << rid;
    EXPECT_EQ(out[0], std::byte(static_cast<char>(stamp[rid])));
  }
}

TEST_F(PersistAppendTest, RecoverAfterGcChurn) {
  Rng rng(602);
  std::vector<int> stamp(80, -1);
  for (int i = 0; i < 500; ++i) {
    const u64 rid = rng.Uniform(80);
    const char fill = static_cast<char>('a' + i % 26);
    ASSERT_TRUE(Write(*layer_, rid, fill).ok());
    stamp[rid] = fill;
  }
  middle::MiddleLayerConfig mc = layer_->config();
  middle::ZoneTranslationLayer restarted(mc, dev_.get());
  ASSERT_TRUE(restarted.Recover().ok());
  std::vector<std::byte> out(8);
  for (u64 rid = 0; rid < 80; ++rid) {
    if (stamp[rid] < 0) continue;
    auto r = restarted.ReadRegion(rid, 0, out);
    ASSERT_TRUE(r.ok()) << "region " << rid << ": "
                        << r.status().ToString();
    EXPECT_EQ(out[0], std::byte(static_cast<char>(stamp[rid])));
  }
}

// ---- cache engine combinations ------------------------------------------

backends::MiddleRegionDeviceConfig EngineDeviceConfig() {
  backends::MiddleRegionDeviceConfig dc;
  dc.region_count = 24;
  dc.zns.zone_count = 12;
  dc.zns.zone_size = 256 * kKiB;
  dc.zns.zone_capacity = 256 * kKiB;
  dc.middle.region_size = 64 * kKiB;
  dc.middle.min_empty_zones = 2;
  return dc;
}

TEST(FeatureMatrix, PersistentReinsertionSurvivesRestart) {
  sim::VirtualClock clock;
  backends::SchemeParams params;
  params.zone_size = 8 * kMiB;
  params.region_size = 512 * kKiB;
  params.cache_bytes = 24 * kMiB;
  params.min_empty_zones = 1;
  params.persistent = true;
  params.cache_config.policy = cache::EvictionPolicy::kFifo;
  params.cache_config.reinsertion_hits = 2;
  auto scheme =
      backends::MakeScheme(backends::SchemeKind::kRegion, params, &clock);
  ASSERT_TRUE(scheme.ok());

  // Keep one key hot through several cache generations.
  ASSERT_TRUE(scheme->cache->Set("hot", std::string(200 * 1024, 'H')).ok());
  for (int i = 0; i < 10; ++i) (void)scheme->cache->Get("hot");
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(scheme->cache
                    ->Set("cold-" + std::to_string(i),
                          std::string(200 * 1024, 'c'))
                    .ok());
    (void)scheme->cache->Get("hot");
  }
  EXPECT_GT(scheme->cache->stats().reinserted_items, 0u);
  ASSERT_TRUE(scheme->cache->Flush().ok());

  cache::FlashCacheConfig cc;
  cc.store_values = true;
  cc.persistent = true;
  cache::FlashCache restarted(cc, scheme->device.get(), &clock);
  ASSERT_TRUE(restarted.Recover().ok());
  std::string v;
  auto g = restarted.Get("hot", &v);
  ASSERT_TRUE(g.ok());
  if (g->hit) EXPECT_EQ(v[0], 'H');
}

TEST(FeatureMatrix, SingleFlushBufferSerializes) {
  sim::VirtualClock clock;
  backends::MiddleRegionDevice device(EngineDeviceConfig(), &clock);
  ASSERT_TRUE(device.Init().ok());
  cache::FlashCacheConfig cc;
  cc.store_values = true;
  cc.flush_buffers = 1;  // every flush must complete before the next opens
  cache::FlashCache flash_cache(cc, &device, &clock);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        flash_cache.Set("k" + std::to_string(i), std::string(30 * 1024, 'x'))
            .ok());
  }
  ASSERT_TRUE(flash_cache.Flush().ok());
  // All data retrievable despite the tight buffer budget.
  EXPECT_TRUE(flash_cache.Get("k99")->hit);
}

TEST(FeatureMatrix, AdmissionPlusReinsertionCoexist) {
  sim::VirtualClock clock;
  backends::MiddleRegionDevice device(EngineDeviceConfig(), &clock);
  ASSERT_TRUE(device.Init().ok());
  cache::FlashCacheConfig cc;
  cc.store_values = true;
  cc.policy = cache::EvictionPolicy::kFifo;
  cc.reinsertion_hits = 1;
  cc.admit_probability = 0.7;
  cache::FlashCache flash_cache(cc, &device, &clock);
  Rng rng(603);
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(flash_cache
                    .Set("k" + std::to_string(rng.Uniform(400)),
                         std::string(8 * 1024, 'x'))
                    .ok());
    (void)flash_cache.Get("k" + std::to_string(rng.Uniform(400)));
  }
  EXPECT_GT(flash_cache.stats().admission_rejects, 0u);
  // The engine stays coherent: stats add up and nothing crashed.
  EXPECT_GE(flash_cache.stats().gets, 4000u);
}

// ---- f2fs path-cost accounting -------------------------------------------

TEST(FeatureMatrix, F2fsForegroundReadPaysPathCost) {
  sim::VirtualClock clock;
  zns::ZnsConfig zc;
  zc.zone_count = 8;
  zc.zone_size = 256 * kKiB;
  zc.zone_capacity = 256 * kKiB;
  zns::ZnsDevice dev(zc, &clock);
  f2fslite::F2fsConfig fc;
  fc.read_path_ns = 50'000;
  f2fslite::F2fsLite fs(fc, &dev);
  ASSERT_TRUE(fs.CreateFile(256 * kKiB).ok());
  std::vector<std::byte> block(4096, std::byte('f'));
  ASSERT_TRUE(fs.Pwrite(0, block).ok());

  std::vector<std::byte> out(4096);
  auto fg = fs.Pread(0, out, sim::IoMode::kForeground);
  ASSERT_TRUE(fg.ok());
  // Foreground read latency includes the fixed filesystem path cost on top
  // of the raw device read.
  EXPECT_GE(fg->latency, 50'000u + 80'000u);

  auto bg = fs.Pread(0, out, sim::IoMode::kBackground);
  ASSERT_TRUE(bg.ok());
  EXPECT_EQ(bg->latency, 0u);
}

}  // namespace
}  // namespace zncache
