#include <gtest/gtest.h>

#include "common/flags.h"

namespace zncache {
namespace {

Result<Flags> ParseArgs(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EmptyArgs) {
  auto f = ParseArgs({});
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE(f->Has("anything"));
  EXPECT_TRUE(f->positional().empty());
}

TEST(Flags, KeyValuePairs) {
  auto f = ParseArgs({"--ops=1000", "--theta=0.75", "--scheme=zone"});
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->GetU64("ops", 0), 1000u);
  EXPECT_DOUBLE_EQ(f->GetDouble("theta", 0), 0.75);
  EXPECT_EQ(f->GetString("scheme"), "zone");
}

TEST(Flags, DefaultsWhenAbsent) {
  auto f = ParseArgs({});
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->GetU64("missing", 42), 42u);
  EXPECT_DOUBLE_EQ(f->GetDouble("missing", 1.5), 1.5);
  EXPECT_EQ(f->GetString("missing", "dflt"), "dflt");
  EXPECT_TRUE(f->GetBool("missing", true));
}

TEST(Flags, BareSwitchIsTrue) {
  auto f = ParseArgs({"--verbose"});
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(f->Has("verbose"));
  EXPECT_TRUE(f->GetBool("verbose"));
}

TEST(Flags, BoolParsing) {
  auto f = ParseArgs({"--a=false", "--b=0", "--c=yes"});
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE(f->GetBool("a", true));
  EXPECT_FALSE(f->GetBool("b", true));
  EXPECT_TRUE(f->GetBool("c", false));
}

TEST(Flags, PositionalArgsKept) {
  auto f = ParseArgs({"--x=1", "input.txt", "more"});
  ASSERT_TRUE(f.ok());
  ASSERT_EQ(f->positional().size(), 2u);
  EXPECT_EQ(f->positional()[0], "input.txt");
}

TEST(Flags, SingleDashRejected) {
  EXPECT_FALSE(ParseArgs({"-x"}).ok());
}

TEST(Flags, EmptyNameRejected) {
  EXPECT_FALSE(ParseArgs({"--=v"}).ok());
}

TEST(Flags, LastValueWins) {
  auto f = ParseArgs({"--n=1", "--n=2"});
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->GetU64("n", 0), 2u);
}

}  // namespace
}  // namespace zncache
