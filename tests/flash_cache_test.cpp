#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "backends/middle_region_device.h"
#include "backends/zone_region_device.h"
#include "cache/flash_cache.h"
#include "common/random.h"

namespace zncache::cache {
namespace {

// Most engine tests use the middle-layer backend (the general case).
constexpr u64 kRegion = 64 * kKiB;

backends::MiddleRegionDeviceConfig DeviceConfig(u64 slots = 24) {
  backends::MiddleRegionDeviceConfig c;
  c.region_count = slots;
  c.zns.zone_count = 12;
  c.zns.zone_size = 256 * kKiB;
  c.zns.zone_capacity = 256 * kKiB;
  c.zns.max_open_zones = 6;
  c.zns.max_active_zones = 8;
  c.middle.region_size = kRegion;
  c.middle.open_zones = 2;
  c.middle.min_empty_zones = 2;
  return c;
}

class FlashCacheTest : public ::testing::Test {
 protected:
  void Make(FlashCacheConfig cfg = {}, u64 slots = 24) {
    clock_ = std::make_unique<sim::VirtualClock>();
    device_ =
        std::make_unique<backends::MiddleRegionDevice>(DeviceConfig(slots),
                                                       clock_.get());
    ASSERT_TRUE(device_->Init().ok());
    cache_ = std::make_unique<FlashCache>(cfg, device_.get(), clock_.get());
  }

  void SetUp() override { Make(); }

  std::string Val(size_t n, char c = 'v') { return std::string(n, c); }

  std::unique_ptr<sim::VirtualClock> clock_;
  std::unique_ptr<backends::MiddleRegionDevice> device_;
  std::unique_ptr<FlashCache> cache_;
};

TEST_F(FlashCacheTest, MissOnEmpty) {
  auto g = cache_->Get("nope");
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(g->hit);
  EXPECT_EQ(cache_->stats().gets, 1u);
  EXPECT_EQ(cache_->stats().hits, 0u);
}

TEST_F(FlashCacheTest, SetThenGetFromBuffer) {
  ASSERT_TRUE(cache_->Set("k1", Val(100, 'a')).ok());
  std::string v;
  auto g = cache_->Get("k1", &v);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->hit);
  EXPECT_EQ(v, Val(100, 'a'));
}

TEST_F(FlashCacheTest, GetAfterFlushReadsDevice) {
  ASSERT_TRUE(cache_->Set("k1", Val(1000, 'q')).ok());
  ASSERT_TRUE(cache_->Flush().ok());
  std::string v;
  auto g = cache_->Get("k1", &v);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->hit);
  EXPECT_EQ(v, Val(1000, 'q'));
}

TEST_F(FlashCacheTest, OverwriteReturnsLatest) {
  ASSERT_TRUE(cache_->Set("k", Val(100, '1')).ok());
  ASSERT_TRUE(cache_->Set("k", Val(200, '2')).ok());
  std::string v;
  ASSERT_TRUE(cache_->Get("k", &v).ok());
  EXPECT_EQ(v, Val(200, '2'));
}

TEST_F(FlashCacheTest, DeleteRemoves) {
  ASSERT_TRUE(cache_->Set("k", Val(10)).ok());
  auto d = cache_->Delete("k");
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->hit);  // found
  auto g = cache_->Get("k");
  EXPECT_FALSE(g->hit);
}

TEST_F(FlashCacheTest, DeleteMissingReportsNotFound) {
  auto d = cache_->Delete("ghost");
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(d->hit);
}

TEST_F(FlashCacheTest, OversizedObjectRejected) {
  auto s = cache_->Set("big", Val(kRegion + 1));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(cache_->stats().rejected_sets, 1u);
}

TEST_F(FlashCacheTest, RegionFlushOnFill) {
  // 64 KiB regions; four 20 KiB objects force a flush after the third.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(cache_->Set("k" + std::to_string(i), Val(20 * kKiB)).ok());
  }
  EXPECT_GE(cache_->stats().flushed_regions, 1u);
  // All four still retrievable.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(cache_->Get("k" + std::to_string(i))->hit);
  }
}

TEST_F(FlashCacheTest, EvictionDropsWholeRegionItems) {
  // Fill far beyond capacity (24 slots x 64 KiB = 1.5 MiB) and verify
  // evictions happened and old keys are gone while fresh ones remain.
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(cache_->Set("k" + std::to_string(i), Val(30 * kKiB)).ok());
  }
  EXPECT_GT(cache_->stats().evicted_regions, 0u);
  EXPECT_GT(cache_->stats().evicted_items, 0u);
  EXPECT_FALSE(cache_->Get("k0")->hit);
  EXPECT_TRUE(cache_->Get("k" + std::to_string(n - 1))->hit);
}

TEST_F(FlashCacheTest, LruPrefersEvictingColdRegions) {
  FlashCacheConfig cfg;
  cfg.policy = EvictionPolicy::kLru;
  Make(cfg);
  // Two distinguished keys in early regions; keep "hot" accessed while
  // flooding the cache, leave "cold" untouched.
  // 40 KiB values: one object per 64 KiB region, so "hot" and "cold" land
  // in different regions.
  ASSERT_TRUE(cache_->Set("hot", Val(40 * kKiB)).ok());
  ASSERT_TRUE(cache_->Set("cold", Val(40 * kKiB)).ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(cache_->Set("f" + std::to_string(i), Val(40 * kKiB)).ok());
    EXPECT_TRUE(cache_->Get("hot").ok());
    (void)cache_->Get("hot");
  }
  EXPECT_TRUE(cache_->Get("hot")->hit);
  EXPECT_FALSE(cache_->Get("cold")->hit);
}

TEST_F(FlashCacheTest, FifoEvictsOldestFirst) {
  FlashCacheConfig cfg;
  cfg.policy = EvictionPolicy::kFifo;
  Make(cfg);
  ASSERT_TRUE(cache_->Set("first", Val(30 * kKiB)).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(cache_->Set("f" + std::to_string(i), Val(30 * kKiB)).ok());
    // Access "first" constantly — FIFO must ignore recency.
    (void)cache_->Get("first");
  }
  EXPECT_FALSE(cache_->Get("first")->hit);
}

TEST_F(FlashCacheTest, HitRatioAccounting) {
  ASSERT_TRUE(cache_->Set("a", Val(10)).ok());
  (void)cache_->Get("a");
  (void)cache_->Get("a");
  (void)cache_->Get("missing");
  EXPECT_EQ(cache_->stats().gets, 3u);
  EXPECT_EQ(cache_->stats().hits, 2u);
  EXPECT_NEAR(cache_->stats().HitRatio(), 2.0 / 3.0, 1e-9);
}

TEST_F(FlashCacheTest, StaleRegionEntriesDontEvictNewerVersions) {
  // Write "k" into region A, overwrite into region B, then force eviction
  // of A; "k" must survive (its index entry points at B).
  ASSERT_TRUE(cache_->Set("k", Val(30 * kKiB, '1')).ok());
  ASSERT_TRUE(cache_->Set("pad", Val(30 * kKiB)).ok());  // seal region A
  ASSERT_TRUE(cache_->Set("k", Val(30 * kKiB, '2')).ok());
  // Flood until region A is evicted.
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(cache_->Set("f" + std::to_string(i), Val(30 * kKiB)).ok());
    (void)cache_->Get("k");  // keep k's region warm
  }
  std::string v;
  auto g = cache_->Get("k", &v);
  ASSERT_TRUE(g.ok());
  if (g->hit) {
    EXPECT_EQ(v[0], '2');
  }
}

TEST_F(FlashCacheTest, LatencyIsOnVirtualClock) {
  ASSERT_TRUE(cache_->Set("a", Val(4 * kKiB)).ok());
  ASSERT_TRUE(cache_->Flush().ok());
  auto g = cache_->Get("a");
  ASSERT_TRUE(g.ok());
  // A flash read is at least the device's fixed read cost.
  EXPECT_GE(g->latency, 80 * sim::kMicrosecond);
}

TEST_F(FlashCacheTest, FillTimesRecorded) {
  FlashCacheConfig cfg;
  cfg.record_fill_times = true;
  Make(cfg);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cache_->Set("k" + std::to_string(i), Val(30 * kKiB)).ok());
  }
  EXPECT_GE(cache_->region_fill_times().size(), 5u);
}

TEST_F(FlashCacheTest, DropRegionRemovesItems) {
  ASSERT_TRUE(cache_->Set("a", Val(30 * kKiB)).ok());
  ASSERT_TRUE(cache_->Set("b", Val(30 * kKiB)).ok());  // seals region 0
  ASSERT_TRUE(cache_->Flush().ok());
  ASSERT_TRUE(cache_->DropRegion(0).ok());
  EXPECT_FALSE(cache_->Get("a")->hit);
  EXPECT_GT(cache_->stats().dropped_regions, 0u);
}

TEST_F(FlashCacheTest, DropOpenRegionRefused) {
  ASSERT_TRUE(cache_->Set("a", Val(10)).ok());
  // Region 0 is the open region right now.
  EXPECT_EQ(cache_->DropRegion(0).code(), StatusCode::kFailedPrecondition);
}

TEST_F(FlashCacheTest, CapacityReporting) {
  EXPECT_EQ(cache_->capacity_bytes(), 24 * kRegion);
}

TEST_F(FlashCacheTest, ManyKeysConsistency) {
  // Randomized workload: model answers must match a reference map, modulo
  // evictions (an eviction may only turn a hit into a miss, never corrupt).
  Rng rng(77);
  std::map<std::string, char> truth;
  for (int i = 0; i < 3000; ++i) {
    const std::string key = "k" + std::to_string(rng.Uniform(200));
    const double p = rng.NextDouble();
    if (p < 0.5) {
      std::string v;
      auto g = cache_->Get(key, &v);
      ASSERT_TRUE(g.ok());
      if (g->hit) {
        auto it = truth.find(key);
        ASSERT_NE(it, truth.end()) << "hit on never-written key " << key;
        EXPECT_EQ(v[0], it->second);
      }
    } else if (p < 0.8) {
      const char fill = static_cast<char>('a' + i % 26);
      ASSERT_TRUE(cache_->Set(key, Val(2 * kKiB + i % 1000, fill)).ok());
      truth[key] = fill;
    } else {
      ASSERT_TRUE(cache_->Delete(key).ok());
      truth.erase(key);
    }
  }
}

// --- admission control ------------------------------------------------------

TEST_F(FlashCacheTest, DoorkeeperRejectsFirstSeenAdmitsSecond) {
  FlashCacheConfig cfg;
  cfg.doorkeeper_bits = 4096;
  Make(cfg);

  auto first = cache_->Set("one-hit", Val(200));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->hit);  // rejected: first sighting
  EXPECT_EQ(cache_->stats().sets, 0u);
  EXPECT_EQ(cache_->stats().admission_rejects, 1u);
  EXPECT_EQ(cache_->stats().admission_doorkeeper_rejects, 1u);
  EXPECT_FALSE(cache_->Get("one-hit").value().hit);

  auto second = cache_->Set("one-hit", Val(200));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->hit);  // remembered: second sighting is admitted
  EXPECT_EQ(cache_->stats().sets, 1u);
  EXPECT_EQ(cache_->stats().admission_rejects, 1u);
  EXPECT_TRUE(cache_->Get("one-hit").value().hit);
}

TEST_F(FlashCacheTest, DoorkeeperNeverRejectsResidentKeys) {
  FlashCacheConfig cfg;
  cfg.doorkeeper_bits = 4096;
  cfg.doorkeeper_rotate_ns = sim::kMillisecond;
  Make(cfg);

  ASSERT_FALSE(cache_->Set("k", Val(100)).value().hit);
  ASSERT_TRUE(cache_->Set("k", Val(100)).value().hit);
  // Rotation wipes the filter, but "k" is resident: overwrites of live
  // objects must never be turned away (rejection would act as eviction).
  clock_->Advance(5 * sim::kMillisecond);
  auto overwrite = cache_->Set("k", Val(100, 'w'));
  ASSERT_TRUE(overwrite.ok());
  EXPECT_TRUE(overwrite->hit);
  EXPECT_EQ(cache_->stats().admission_doorkeeper_rejects, 1u);
  std::string v;
  ASSERT_TRUE(cache_->Get("k", &v).value().hit);
  EXPECT_EQ(v, Val(100, 'w'));
}

TEST_F(FlashCacheTest, DoorkeeperRotationForgetsFirstTimers) {
  FlashCacheConfig cfg;
  cfg.doorkeeper_bits = 4096;
  cfg.doorkeeper_rotate_ns = sim::kMillisecond;
  Make(cfg);

  ASSERT_FALSE(cache_->Set("k", Val(100)).value().hit);  // filter remembers
  // Make the key non-resident again, then cross the rotation boundary:
  // the filter forgets the sighting and the key is first-seen once more.
  ASSERT_TRUE(cache_->Delete("k").ok());
  clock_->Advance(5 * sim::kMillisecond);
  auto again = cache_->Set("k", Val(100));
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->hit);
  EXPECT_EQ(cache_->stats().admission_doorkeeper_rejects, 2u);
}

TEST_F(FlashCacheTest, SizeThresholdRejectsLargeObjects) {
  FlashCacheConfig cfg;
  cfg.admit_max_size = kKiB;
  Make(cfg);

  auto big = cache_->Set("big", Val(2 * kKiB));
  ASSERT_TRUE(big.ok());
  EXPECT_FALSE(big->hit);
  EXPECT_EQ(cache_->stats().admission_size_rejects, 1u);
  EXPECT_EQ(cache_->stats().admission_rejects, 1u);
  EXPECT_FALSE(cache_->Get("big").value().hit);

  auto small = cache_->Set("small", Val(512));
  ASSERT_TRUE(small.ok());
  EXPECT_TRUE(small->hit);
  EXPECT_TRUE(cache_->Get("small").value().hit);
  EXPECT_EQ(cache_->stats().admission_size_rejects, 1u);
}

TEST_F(FlashCacheTest, AdmissionGatesOffKeepCountersAtZero) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(cache_->Set("k" + std::to_string(i), Val(4 * kKiB)).ok());
  }
  EXPECT_EQ(cache_->stats().admission_rejects, 0u);
  EXPECT_EQ(cache_->stats().admission_doorkeeper_rejects, 0u);
  EXPECT_EQ(cache_->stats().admission_size_rejects, 0u);
  EXPECT_EQ(cache_->stats().sets, 50u);
}

TEST_F(FlashCacheTest, SetsPlusAdmissionRejectsEqualsAttempts) {
  FlashCacheConfig cfg;
  cfg.doorkeeper_bits = 1024;
  cfg.admit_max_size = 8 * kKiB;
  Make(cfg);
  Rng rng(11);
  const u64 attempts = 500;
  for (u64 i = 0; i < attempts; ++i) {
    const std::string key = "k" + std::to_string(rng.Uniform(120));
    ASSERT_TRUE(cache_->Set(key, Val(rng.Uniform(12 * kKiB) + 1)).ok());
  }
  const CacheStats& s = cache_->stats();
  EXPECT_EQ(s.sets + s.admission_rejects, attempts);
  EXPECT_EQ(s.admission_rejects,
            s.admission_doorkeeper_rejects + s.admission_size_rejects);
  EXPECT_GT(s.admission_doorkeeper_rejects, 0u);
  EXPECT_GT(s.admission_size_rejects, 0u);
}

// --- per-op TTL -------------------------------------------------------------

TEST_F(FlashCacheTest, PerOpTtlExpiresWithoutEngineTtl) {
  // No config-level TTL: the per-op deadline alone drives lazy expiry.
  ASSERT_TRUE(cache_->Set("short", Val(100), sim::kMillisecond).ok());
  ASSERT_TRUE(cache_->Set("forever", Val(100)).ok());
  EXPECT_TRUE(cache_->Get("short").value().hit);

  clock_->Advance(2 * sim::kMillisecond);
  EXPECT_FALSE(cache_->Get("short").value().hit);
  EXPECT_TRUE(cache_->Get("forever").value().hit);
  EXPECT_EQ(cache_->stats().ttl_expired_items, 1u);
}

TEST_F(FlashCacheTest, PerOpTtlOverridesEngineDefault) {
  FlashCacheConfig cfg;
  cfg.ttl_ns = 100 * sim::kMillisecond;
  Make(cfg);
  ASSERT_TRUE(cache_->Set("fast", Val(100), sim::kMillisecond).ok());
  ASSERT_TRUE(cache_->Set("default", Val(100)).ok());

  clock_->Advance(2 * sim::kMillisecond);
  EXPECT_FALSE(cache_->Get("fast").value().hit);     // per-op deadline won
  EXPECT_TRUE(cache_->Get("default").value().hit);   // engine TTL not yet due

  clock_->Advance(200 * sim::kMillisecond);
  EXPECT_FALSE(cache_->Get("default").value().hit);
}

TEST_F(FlashCacheTest, OverwriteRefreshesPerOpTtl) {
  ASSERT_TRUE(cache_->Set("k", Val(100), sim::kMillisecond).ok());
  clock_->Advance(sim::kMillisecond / 2);
  // Overwrite with a longer deadline before the first one fires.
  ASSERT_TRUE(cache_->Set("k", Val(100), 10 * sim::kMillisecond).ok());
  clock_->Advance(2 * sim::kMillisecond);
  EXPECT_TRUE(cache_->Get("k").value().hit);
  clock_->Advance(20 * sim::kMillisecond);
  EXPECT_FALSE(cache_->Get("k").value().hit);
}

}  // namespace
}  // namespace zncache::cache
