#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "hdd/hdd_device.h"

namespace zncache::hdd {
namespace {

class HddDeviceTest : public ::testing::Test {
 protected:
  HddConfig Config() {
    HddConfig c;
    c.capacity = 16 * kMiB;
    return c;
  }

  sim::VirtualClock clock_;
  HddDevice dev_{Config(), &clock_};
};

TEST_F(HddDeviceTest, RoundTrip) {
  std::vector<std::byte> data(4096);
  for (size_t i = 0; i < data.size(); ++i) data[i] = std::byte(i % 127);
  ASSERT_TRUE(dev_.Write(1000, data).ok());
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(dev_.Read(1000, out).ok());
  EXPECT_EQ(std::memcmp(data.data(), out.data(), data.size()), 0);
}

TEST_F(HddDeviceTest, BoundsChecked) {
  std::vector<std::byte> b(10);
  EXPECT_FALSE(dev_.Write(16 * kMiB, b).ok());
  EXPECT_FALSE(dev_.Read(16 * kMiB - 5, b).ok());
}

TEST_F(HddDeviceTest, RandomReadPaysSeek) {
  std::vector<std::byte> b(4096);
  ASSERT_TRUE(dev_.Write(0, b).ok());
  auto r = dev_.Read(8 * kMiB, b);  // far from the head
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->latency, 8 * sim::kMillisecond);
}

TEST_F(HddDeviceTest, SequentialReadSkipsSeek) {
  std::vector<std::byte> b(4096);
  ASSERT_TRUE(dev_.Write(0, b).ok());
  ASSERT_TRUE(dev_.Write(4096, b).ok());
  // Position the head at 0 via a read, then read sequentially.
  ASSERT_TRUE(dev_.Read(0, b).ok());
  auto r = dev_.Read(4096, b);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->latency, 1 * sim::kMillisecond);
}

TEST_F(HddDeviceTest, SeekCounted) {
  std::vector<std::byte> b(512);
  ASSERT_TRUE(dev_.Write(0, b).ok());  // head starts at 0: sequential
  ASSERT_TRUE(dev_.Write(1 * kMiB, b).ok());
  ASSERT_TRUE(dev_.Write(4 * kMiB, b).ok());
  EXPECT_GE(dev_.stats().seeks, 2u);
}

TEST_F(HddDeviceTest, BackgroundWrite) {
  std::vector<std::byte> b(4096);
  auto r = dev_.Write(0, b, sim::IoMode::kBackground);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->latency, 0u);
  EXPECT_EQ(clock_.Now(), 0u);
  EXPECT_GT(r->completion, 0u);
}

TEST_F(HddDeviceTest, StatsAccumulate) {
  std::vector<std::byte> b(100);
  ASSERT_TRUE(dev_.Write(0, b).ok());
  ASSERT_TRUE(dev_.Read(0, b).ok());
  EXPECT_EQ(dev_.stats().bytes_written, 100u);
  EXPECT_EQ(dev_.stats().bytes_read, 100u);
}

}  // namespace
}  // namespace zncache::hdd
