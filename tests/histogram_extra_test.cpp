// Additional histogram and timing-model coverage: merge algebra, bucket
// boundary behaviour, and IoCost arithmetic at extreme sizes.
#include <gtest/gtest.h>

#include "common/histogram.h"
#include "common/random.h"
#include "sim/timing.h"

namespace zncache {
namespace {

TEST(HistogramExtra, MergeEqualsUnion) {
  Rng rng(71);
  Histogram a, b, both;
  for (int i = 0; i < 5000; ++i) {
    const u64 v = rng.Next() % 1'000'000;
    if (i % 2 == 0) {
      a.Record(v);
    } else {
      b.Record(v);
    }
    both.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.min(), both.min());
  EXPECT_EQ(a.max(), both.max());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.Percentile(q), both.Percentile(q)) << q;
  }
}

TEST(HistogramExtra, MergeWithEmptyIsIdentity) {
  Histogram a, empty;
  a.Record(100);
  a.Record(200);
  const u64 p50 = a.P50();
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.P50(), p50);
}

TEST(HistogramExtra, ZeroValues) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(0);
  EXPECT_EQ(h.P50(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramExtra, SmallIntegersExact) {
  // Values below the sub-bucket count land in exact buckets.
  Histogram h;
  for (u64 v = 0; v < 8; ++v) h.Record(v);
  EXPECT_EQ(h.Percentile(0.0), 0u);
  EXPECT_EQ(h.max(), 7u);
}

TEST(HistogramExtra, PercentileMonotoneInQ) {
  Rng rng(72);
  Histogram h;
  for (int i = 0; i < 10'000; ++i) h.Record(rng.Next() % 100'000);
  u64 prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const u64 p = h.Percentile(q);
    EXPECT_GE(p, prev) << "q=" << q;
    prev = p;
  }
}

TEST(IoCostExtra, ZeroBandwidthAvoided) {
  // All shipped timing presets have sane positive bandwidth.
  sim::FlashTiming flash;
  sim::HddTiming disk;
  EXPECT_GT(flash.read.bytes_per_ns, 0.0);
  EXPECT_GT(flash.write.bytes_per_ns, 0.0);
  EXPECT_GT(disk.read.bytes_per_ns, 0.0);
}

TEST(IoCostExtra, CostScalesLinearlyInBytes) {
  sim::IoCost cost{0, 2.0};
  EXPECT_EQ(cost.Cost(2000), 2 * cost.Cost(1000));
  EXPECT_EQ(cost.Cost(0), 0u);
}

TEST(IoCostExtra, LargeTransfersDoNotOverflow) {
  sim::IoCost cost{1000, 1.0};
  const u64 huge = 64ULL * kGiB;
  EXPECT_GT(cost.Cost(huge), cost.Cost(huge / 2));
}

}  // namespace
}  // namespace zncache
