// Backfill for the header-only glue components: HybridCache's size-class
// routing edge cases, FlashSecondaryCache (the RocksDB-style hook), and
// CacheHintAdapter (the §3.4 co-design drop-vs-migrate policy).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "backends/cache_hint_adapter.h"
#include "backends/middle_region_device.h"
#include "cache/big_hash.h"
#include "cache/hybrid_cache.h"
#include "kv/secondary_cache.h"

namespace zncache {
namespace {

// Shared rig: a BigHash over a block SSD plus a FlashCache over the
// ZNS+middle-layer region device — the two engines HybridCache splices.
class HybridRigTest : public ::testing::Test {
 protected:
  void SetUp() override {
    blockssd::BlockSsdConfig sc;
    sc.logical_capacity = 4 * kMiB;
    sc.pages_per_block = 64;
    ssd_ = std::make_unique<blockssd::BlockSsd>(sc, &clock_);
    cache::BigHashConfig bc;
    bc.bucket_count = 1024;
    small_ = std::make_unique<cache::BigHash>(bc, ssd_.get(), 0, &clock_);

    backends::MiddleRegionDeviceConfig dc;
    dc.region_count = 24;
    dc.zns.zone_count = 12;
    dc.zns.zone_size = 256 * kKiB;
    dc.zns.zone_capacity = 256 * kKiB;
    dc.middle.region_size = 64 * kKiB;
    dc.middle.min_empty_zones = 2;
    device_ = std::make_unique<backends::MiddleRegionDevice>(dc, &clock_);
    ASSERT_TRUE(device_->Init().ok());
    cache::FlashCacheConfig fc;
    fc.store_values = true;
    large_ = std::make_unique<cache::FlashCache>(fc, device_.get(), &clock_);
  }

  sim::VirtualClock clock_;
  std::unique_ptr<blockssd::BlockSsd> ssd_;
  std::unique_ptr<cache::BigHash> small_;
  std::unique_ptr<backends::MiddleRegionDevice> device_;
  std::unique_ptr<cache::FlashCache> large_;
};

// ------------------------------------------------------- hybrid cache ----

TEST_F(HybridRigTest, ThresholdBoundaryRoutesSmall) {
  cache::HybridCacheConfig hc;
  hc.small_item_threshold = 1 * kKiB;
  cache::HybridCache hybrid(hc, small_.get(), large_.get());

  // Exactly at the threshold is still "small" (<=).
  ASSERT_TRUE(hybrid.Set("edge", std::string(1 * kKiB, 'e')).ok());
  EXPECT_EQ(hybrid.stats().small_routed, 1u);
  EXPECT_EQ(hybrid.stats().large_routed, 0u);
  EXPECT_TRUE(small_->Get("edge")->hit);
  // One byte over crosses into the region engine.
  ASSERT_TRUE(hybrid.Set("over", std::string(1 * kKiB + 1, 'o')).ok());
  EXPECT_EQ(hybrid.stats().large_routed, 1u);
  EXPECT_TRUE(large_->Get("over")->hit);
}

TEST_F(HybridRigTest, ShrinkingKeyEvictsLargeTwin) {
  cache::HybridCacheConfig hc;
  hc.small_item_threshold = 1 * kKiB;
  cache::HybridCache hybrid(hc, small_.get(), large_.get());

  // large -> small morph: the large copy must not shadow or resurrect.
  ASSERT_TRUE(hybrid.Set("k", std::string(8 * kKiB, 'L')).ok());
  ASSERT_TRUE(hybrid.Set("k", std::string(128, 'S')).ok());
  EXPECT_FALSE(large_->Get("k")->hit);
  std::string v;
  ASSERT_TRUE(hybrid.Get("k", &v)->hit);
  EXPECT_EQ(v.size(), 128u);
  EXPECT_EQ(v[0], 'S');
}

TEST_F(HybridRigTest, DeleteOfAbsentKeyReportsNoHit) {
  cache::HybridCache hybrid(cache::HybridCacheConfig{}, small_.get(),
                            large_.get());
  auto d = hybrid.Delete("never-set");
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(d->hit);
}

TEST_F(HybridRigTest, LargeHitLatencyIncludesSmallProbe) {
  cache::HybridCacheConfig hc;
  hc.small_item_threshold = 256;
  cache::HybridCache hybrid(hc, small_.get(), large_.get());
  ASSERT_TRUE(hybrid.Set("big", std::string(8 * kKiB, 'b')).ok());

  // A unified Get on a large key pays the small-engine probe first; the
  // reported latency must cover both engines.
  auto direct = large_->Get("big");
  ASSERT_TRUE(direct.ok() && direct->hit);
  auto unified = hybrid.Get("big");
  ASSERT_TRUE(unified.ok() && unified->hit);
  EXPECT_GE(unified->latency, direct->latency);
}

// --------------------------------------------------- secondary cache ----

TEST_F(HybridRigTest, SecondaryCacheInsertLookupRoundTrip) {
  kv::FlashSecondaryCache secondary(large_.get());
  const std::string block(4 * kKiB, 'B');
  secondary.Insert("sst1/block7",
                   std::span<const std::byte>(
                       reinterpret_cast<const std::byte*>(block.data()),
                       block.size()));
  std::string out;
  EXPECT_TRUE(secondary.Lookup("sst1/block7", &out));
  EXPECT_EQ(out, block);
  EXPECT_FALSE(secondary.Lookup("sst1/block8", &out));
  // Only hits land in the latency histogram.
  EXPECT_EQ(secondary.hit_latency().count(), 1u);
  secondary.ResetHitLatency();
  EXPECT_EQ(secondary.hit_latency().count(), 0u);
}

TEST_F(HybridRigTest, SecondaryCacheSwallowsOversizedInserts) {
  kv::FlashSecondaryCache secondary(large_.get());
  // Larger than a region: the engine rejects it, the adapter just skips.
  const std::string huge(128 * kKiB, 'H');
  secondary.Insert("huge",
                   std::span<const std::byte>(
                       reinterpret_cast<const std::byte*>(huge.data()),
                       huge.size()));
  std::string out;
  EXPECT_FALSE(secondary.Lookup("huge", &out));
}

// ------------------------------------------------------ hint adapter ----

TEST_F(HybridRigTest, HintAdapterDropsOnlyColdRegions) {
  // Seal a few regions' worth of data.
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(
        large_->Set("k" + std::to_string(i), std::string(20 * kKiB, 'v'))
            .ok());
  }
  ASSERT_TRUE(large_->Flush().ok());

  // A huge cold-age vetoes every drop: all data was accessed "recently".
  backends::CacheHintAdapter strict(large_.get(), /*cold_age_accesses=*/1u
                                                      << 20);
  u64 dropped = 0;
  for (u64 rid = 0; rid < device_->region_count(); ++rid) {
    if (strict.TryDropRegion(rid)) dropped++;
  }
  EXPECT_EQ(dropped, 0u);
  EXPECT_TRUE(large_->Get("k3")->hit);

  // Age the data past a small cold-age threshold, then drops succeed and
  // take their index entries with them.
  for (int i = 0; i < 64; ++i) (void)large_->Get("k0");
  backends::CacheHintAdapter lax(large_.get(), /*cold_age_accesses=*/8);
  for (u64 rid = 0; rid < device_->region_count(); ++rid) {
    if (lax.TryDropRegion(rid)) dropped++;
  }
  EXPECT_GT(dropped, 0u);
  u64 misses = 0;
  for (int i = 1; i < 12; ++i) {
    auto g = large_->Get("k" + std::to_string(i));
    ASSERT_TRUE(g.ok());
    if (!g->hit) misses++;
  }
  EXPECT_GT(misses, 0u);
}

TEST_F(HybridRigTest, HintAdapterNeverDropsTheOpenRegion) {
  ASSERT_TRUE(large_->Set("buffered", std::string(1 * kKiB, 'b')).ok());
  // Unflushed: the item sits in the open region, which DropRegion refuses
  // even at cold-age 0 (dropping a free region is a harmless no-op, so
  // every *other* slot reports droppable).
  backends::CacheHintAdapter adapter(large_.get(), /*cold_age_accesses=*/0);
  u64 dropped = 0;
  for (u64 rid = 0; rid < device_->region_count(); ++rid) {
    if (adapter.TryDropRegion(rid)) dropped++;
  }
  EXPECT_EQ(dropped, device_->region_count() - 1);
  EXPECT_TRUE(large_->Get("buffered")->hit);
}

}  // namespace
}  // namespace zncache
