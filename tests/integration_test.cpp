// Integration tests: miniature versions of every experiment, asserting the
// paper's *qualitative* shapes end-to-end (full stack: workload -> cache
// engine -> backend -> device model, all on virtual time).
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "backends/middle_region_device.h"
#include "backends/schemes.h"
#include "kv/db_bench.h"
#include "kv/lsm_store.h"
#include "workload/cachebench.h"

namespace zncache {
namespace {

using backends::MakeScheme;
using backends::SchemeKind;
using backends::SchemeParams;

struct MiniResult {
  double ops_per_minute = 0;
  double hit_ratio = 0;
  double wa = 0;
};

// Mini Figure 2 setup: zone 8 MiB, region 512 KiB, Zone-Cache 20 zones vs
// 16-zone cache for the rest.
MiniResult RunMiniCacheBench(SchemeKind kind, u64 hint_cold_age = 0) {
  sim::VirtualClock clock;
  SchemeParams params;
  params.zone_size = 8 * kMiB;
  params.region_size = 512 * kKiB;
  params.cache_bytes =
      kind == SchemeKind::kZone ? 20 * params.zone_size : 16 * params.zone_size;
  params.min_empty_zones = 1;
  params.hint_cold_age = hint_cold_age;
  params.cache_config.lru_sample = 256;
  auto scheme = MakeScheme(kind, params, &clock);
  EXPECT_TRUE(scheme.ok()) << scheme.status().ToString();

  workload::CacheBenchConfig wl;
  wl.ops = 60'000;
  wl.warmup_ops = 60'000;
  wl.key_space = 24'000;
  wl.zipf_theta = 0.85;
  wl.value_min = 2 * kKiB;
  wl.value_max = 16 * kKiB;
  workload::CacheBenchRunner runner(wl);
  auto r = runner.Run(*scheme->cache, clock);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return MiniResult{r->ops_per_minute, r->hit_ratio, scheme->WaFactor()};
}

TEST(ExperimentShapes, Fig2_ZoneCacheBestHitRatio) {
  const MiniResult zone = RunMiniCacheBench(SchemeKind::kZone);
  const MiniResult block = RunMiniCacheBench(SchemeKind::kBlock);
  // The larger usable capacity of the OP-free scheme buys hit ratio.
  EXPECT_GT(zone.hit_ratio, block.hit_ratio);
}

TEST(ExperimentShapes, Fig2_FileCacheSlowerThanMiddleLayer) {
  const MiniResult file = RunMiniCacheBench(SchemeKind::kFile);
  const MiniResult region = RunMiniCacheBench(SchemeKind::kRegion);
  // The filesystem detour always costs throughput vs the thin middle layer.
  EXPECT_LT(file.ops_per_minute, region.ops_per_minute);
}

TEST(ExperimentShapes, Fig2_ZoneCacheIsGcFree) {
  const MiniResult zone = RunMiniCacheBench(SchemeKind::kZone);
  EXPECT_DOUBLE_EQ(zone.wa, 1.0);
}

TEST(ExperimentShapes, Fig2_SmallRegionSchemesComparableHitRatio) {
  const MiniResult region = RunMiniCacheBench(SchemeKind::kRegion);
  const MiniResult block = RunMiniCacheBench(SchemeKind::kBlock);
  EXPECT_NEAR(region.hit_ratio, block.hit_ratio, 0.02);
}

TEST(ExperimentShapes, Fig3_LargeRegionFillTimeJumpsAtEviction) {
  sim::VirtualClock clock;
  SchemeParams params;
  params.zone_size = 8 * kMiB;
  params.cache_bytes = 10 * params.zone_size;
  params.min_empty_zones = 1;
  params.cache_config.record_fill_times = true;
  auto scheme = MakeScheme(SchemeKind::kZone, params, &clock);
  ASSERT_TRUE(scheme.ok());

  Rng rng(3);
  std::string value;
  u64 key = 0;
  while (scheme->cache->region_fill_times().size() < 20) {
    value.assign(4 * kKiB + rng.Uniform(8 * kKiB), 'v');
    ASSERT_TRUE(scheme->cache->Set("k" + std::to_string(key++), value).ok());
  }
  const auto& times = scheme->cache->region_fill_times();
  // Regions 0..9 fill without eviction; from ~10 on, eviction contention
  // and reset costs land on the insert path.
  double before = 0, after = 0;
  for (size_t i = 2; i < 9; ++i) before += static_cast<double>(times[i]);
  for (size_t i = 12; i < 19; ++i) after += static_cast<double>(times[i]);
  EXPECT_GT(after, before * 1.5);
}

TEST(ExperimentShapes, Fig4_OpRatioTradeoffForRegionCache) {
  auto run = [](double op) {
    sim::VirtualClock clock;
    SchemeParams params;
    params.zone_size = 8 * kMiB;
    params.region_size = 512 * kKiB;
    params.device_zones = 24;
    params.cache_bytes = static_cast<u64>(
        24 * params.zone_size * (1.0 - op) / (512 * kKiB)) * 512 * kKiB;
    params.region_op_ratio = op;
    params.min_empty_zones = 1;
    params.open_zones = 3;
    params.cache_config.lru_sample = 256;
    auto scheme = MakeScheme(SchemeKind::kRegion, params, &clock);
    EXPECT_TRUE(scheme.ok()) << scheme.status().ToString();
    workload::CacheBenchConfig wl;
    wl.ops = 50'000;
    wl.warmup_ops = 120'000;
    wl.key_space = 40'000;
    wl.value_min = 2 * kKiB;
    wl.value_max = 16 * kKiB;
    workload::CacheBenchRunner runner(wl);
    auto r = runner.Run(*scheme->cache, clock);
    EXPECT_TRUE(r.ok());
    return MiniResult{r->ops_per_minute, r->hit_ratio, scheme->WaFactor()};
  };
  const MiniResult tight = run(0.20);
  const MiniResult roomy = run(0.38);
  // More OP -> smaller cache -> lower hit ratio, but less GC -> lower WA.
  EXPECT_GT(tight.hit_ratio, roomy.hit_ratio);
  EXPECT_GE(tight.wa, roomy.wa);
}

TEST(ExperimentShapes, Codesign_HintsCutWaWithoutHitRatioCollapse) {
  // Tight-OP Region-Cache: GC active. Hints should reduce WA while keeping
  // the hit ratio within a small band of the baseline.
  auto run = [](u64 cold_age) {
    sim::VirtualClock clock;
    SchemeParams params;
    params.zone_size = 8 * kMiB;
    params.region_size = 512 * kKiB;
    params.device_zones = 24;
    params.cache_bytes = 19 * params.zone_size;
    params.region_op_ratio = 0.15;
    params.min_empty_zones = 1;
    params.open_zones = 3;
    params.hint_cold_age = cold_age;
    params.cache_config.lru_sample = 256;
    auto scheme = MakeScheme(SchemeKind::kRegion, params, &clock);
    EXPECT_TRUE(scheme.ok()) << scheme.status().ToString();
    workload::CacheBenchConfig wl;
    wl.ops = 60'000;
    wl.warmup_ops = 120'000;
    wl.key_space = 40'000;
    wl.value_min = 2 * kKiB;
    wl.value_max = 16 * kKiB;
    workload::CacheBenchRunner runner(wl);
    auto r = runner.Run(*scheme->cache, clock);
    EXPECT_TRUE(r.ok());
    return MiniResult{r->ops_per_minute, r->hit_ratio, scheme->WaFactor()};
  };
  const MiniResult plain = run(0);
  const MiniResult hinted = run(8'000);
  EXPECT_GT(plain.wa, 1.05);  // baseline GC is actually migrating
  EXPECT_LT(hinted.wa, plain.wa);
  EXPECT_GT(hinted.hit_ratio, plain.hit_ratio - 0.03);
}

TEST(ExperimentShapes, Fig5_SecondaryCacheBeatsNoCache) {
  sim::VirtualClock clock;
  hdd::HddConfig hc;
  hc.capacity = 512 * kMiB;
  hdd::HddDevice disk(hc, &clock);

  kv::LsmConfig lsm_config;
  lsm_config.block_cache.capacity_bytes = 256 * kKiB;
  kv::LsmStore store(lsm_config, &disk, &clock, nullptr);

  kv::DbBenchConfig cfg;
  cfg.num_keys = 150'000;
  cfg.reads = 10'000;
  cfg.exp_range = 25.0;
  kv::DbBench bench(cfg);
  ASSERT_TRUE(bench.FillRandom(store).ok());
  clock.Advance(30 * sim::kSecond);

  // Without a secondary cache.
  auto cold = bench.ReadRandom(store, clock);
  ASSERT_TRUE(cold.ok());

  // With a Region-Cache secondary tier (warm it, then measure).
  SchemeParams params;
  params.zone_size = 8 * kMiB;
  params.region_size = 512 * kKiB;
  params.cache_bytes = 32 * kMiB;
  params.min_empty_zones = 1;
  params.store_data = true;
  auto scheme = MakeScheme(SchemeKind::kRegion, params, &clock);
  ASSERT_TRUE(scheme.ok());
  kv::FlashSecondaryCache secondary(scheme->cache.get());
  kv::BlockCacheConfig bc;
  bc.capacity_bytes = 256 * kKiB;
  store.ResetCache(bc, &secondary);
  ASSERT_TRUE(bench.ReadRandom(store, clock).ok());  // warm
  auto warm = bench.ReadRandom(store, clock);
  ASSERT_TRUE(warm.ok());

  EXPECT_GT(warm->ops_per_sec, cold->ops_per_sec * 1.5);
  EXPECT_GT(scheme->cache->stats().HitRatio(), 0.5);
}

TEST(ExperimentShapes, Table2_HitRatioMonotonicInZoneCacheSize) {
  sim::VirtualClock clock;
  hdd::HddConfig hc;
  hc.capacity = 512 * kMiB;
  hdd::HddDevice disk(hc, &clock);
  kv::LsmConfig lsm_config;
  lsm_config.block_cache.capacity_bytes = 256 * kKiB;
  kv::LsmStore store(lsm_config, &disk, &clock, nullptr);

  kv::DbBenchConfig cfg;
  cfg.num_keys = 150'000;
  cfg.reads = 12'000;
  cfg.exp_range = 4.0;  // mild skew: the working set exceeds small caches
  kv::DbBench bench(cfg);
  ASSERT_TRUE(bench.FillRandom(store).ok());
  clock.Advance(30 * sim::kSecond);

  std::vector<double> hit_ratios;
  for (u64 zones : {2, 3, 5}) {
    SchemeParams params;
    params.zone_size = 8 * kMiB;
    params.cache_bytes = zones * params.zone_size;
    params.store_data = true;
    auto scheme = MakeScheme(SchemeKind::kZone, params, &clock);
    ASSERT_TRUE(scheme.ok());
    kv::FlashSecondaryCache secondary(scheme->cache.get());
    kv::BlockCacheConfig bc;
    bc.capacity_bytes = 256 * kKiB;
    store.ResetCache(bc, &secondary);
    ASSERT_TRUE(bench.ReadRandom(store, clock).ok());  // warm
    const auto& cs = scheme->cache->stats();
    const u64 g0 = cs.gets, h0 = cs.hits;
    ASSERT_TRUE(bench.ReadRandom(store, clock).ok());
    hit_ratios.push_back(static_cast<double>(cs.hits - h0) /
                         static_cast<double>(cs.gets - g0));
  }
  EXPECT_LT(hit_ratios[0], hit_ratios[1]);
  EXPECT_LT(hit_ratios[1], hit_ratios[2]);
}

}  // namespace
}  // namespace zncache
