// Unit tests for the channel/plane-parallel IoEngine: serial-topology
// equivalence with sim::ServiceTimer, unit striping, overlap math across
// units, pipelined issue gating, and abort (crash-halt) semantics — plus
// the ZnsDevice async submission surface built on top of it.
#include <gtest/gtest.h>

#include <vector>

#include "fault/fault_injector.h"
#include "io/io_engine.h"
#include "sim/clock.h"
#include "sim/service_timer.h"
#include "zns/zns_device.h"

namespace zncache::io {
namespace {

IoTopology MultiChannel(u32 channels, u32 planes = 1, u32 depth = 16) {
  IoTopology t;
  t.channels = channels;
  t.planes_per_channel = planes;
  t.queue_depth = depth;
  return t;
}

TEST(IoTopology, DefaultIsSerial) {
  IoTopology t;
  EXPECT_EQ(t.units(), 1u);
  EXPECT_TRUE(t.serial());
  EXPECT_FALSE(MultiChannel(4).serial());
  EXPECT_EQ(MultiChannel(4, 2).units(), 8u);
}

// The load-bearing compatibility claim: on the serial topology, Serve must
// produce the same latencies, completions, and clock movement as
// sim::ServiceTimer for an arbitrary interleaving of foreground and
// background requests.
TEST(IoEngine, SerialServeMatchesServiceTimer) {
  sim::VirtualClock ce, ct;
  IoEngine engine(&ce, IoTopology{});
  sim::ServiceTimer timer(&ct);

  const struct {
    SimNanos service;
    sim::IoMode mode;
  } reqs[] = {
      {100, sim::IoMode::kForeground}, {50, sim::IoMode::kBackground},
      {70, sim::IoMode::kForeground},  {10, sim::IoMode::kBackground},
      {10, sim::IoMode::kBackground},  {300, sim::IoMode::kForeground},
      {1, sim::IoMode::kForeground},
  };
  for (const auto& r : reqs) {
    const sim::Served a = engine.Serve(0, r.service, r.mode);
    const sim::Served b = timer.Serve(r.service, r.mode);
    EXPECT_EQ(a.latency, b.latency);
    EXPECT_EQ(a.completion, b.completion);
    EXPECT_EQ(ce.Now(), ct.Now());
    EXPECT_EQ(engine.busy_until(), timer.busy_until());
  }
}

TEST(IoEngine, RoutingStripesZonesAndOffsets) {
  sim::VirtualClock c;
  IoEngine engine(&c, MultiChannel(4));
  EXPECT_EQ(engine.unit_count(), 4u);
  EXPECT_EQ(engine.UnitForZone(0), 0u);
  EXPECT_EQ(engine.UnitForZone(5), 1u);
  EXPECT_EQ(engine.UnitForZone(7), 3u);
  // LBA striping at stripe_bytes granularity.
  const u64 stripe = IoTopology{}.stripe_bytes;
  EXPECT_EQ(engine.UnitForOffset(0), 0u);
  EXPECT_EQ(engine.UnitForOffset(stripe - 1), 0u);
  EXPECT_EQ(engine.UnitForOffset(stripe), 1u);
  EXPECT_EQ(engine.UnitForOffset(5 * stripe), 1u);
  // Serial topology routes everything to unit 0.
  IoEngine serial(&c, IoTopology{});
  EXPECT_EQ(serial.UnitForZone(13), 0u);
  EXPECT_EQ(serial.UnitForOffset(123456789), 0u);
}

// Two requests on distinct units submitted at the same instant overlap:
// both start at issue, and the device-wide horizon is the max, not the sum.
TEST(IoEngine, DistinctUnitsOverlap) {
  sim::VirtualClock c;
  IoEngine engine(&c, MultiChannel(2));
  const IoToken a = engine.Submit(0, 100, 0);
  const IoToken b = engine.Submit(1, 80, 0);
  EXPECT_EQ(a.start, 0u);
  EXPECT_EQ(b.start, 0u);
  EXPECT_EQ(a.completion, 100u);
  EXPECT_EQ(b.completion, 80u);
  EXPECT_EQ(engine.busy_until(), 100u);
  // Same unit serializes.
  const IoToken a2 = engine.Submit(0, 25, 0);
  EXPECT_EQ(a2.start, 100u);
  EXPECT_EQ(a2.completion, 125u);
  engine.Complete(a, sim::IoMode::kBackground);
  engine.Complete(b, sim::IoMode::kBackground);
  engine.Complete(a2, sim::IoMode::kBackground);
}

// Queue-depth math: with qd requests outstanding against one unit, request
// i starts exactly where request i-1 ended.
TEST(IoEngine, DeterministicQueueing) {
  sim::VirtualClock c;
  IoEngine engine(&c, MultiChannel(1, 1, 64));
  std::vector<IoToken> ts;
  for (int i = 0; i < 8; ++i) ts.push_back(engine.Submit(0, 10, 0));
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(ts[i].start, static_cast<SimNanos>(10 * i));
    EXPECT_EQ(ts[i].completion, static_cast<SimNanos>(10 * (i + 1)));
  }
  EXPECT_EQ(engine.max_in_flight(), 8u);
  for (const auto& t : ts) engine.Complete(t, sim::IoMode::kBackground);
  EXPECT_EQ(engine.in_flight(), 0u);
}

// `issue_ts` gates service: the unit may be free, but the request cannot
// start before its issue instant (the pipelined-GC write gated on its
// feeding read's completion).
TEST(IoEngine, IssueTimestampGatesStart) {
  sim::VirtualClock c;
  IoEngine engine(&c, MultiChannel(2));
  const IoToken read = engine.Submit(0, 100, 0);
  // Write to the *other* unit, issued when the read completes.
  const IoToken write = engine.Submit(1, 50, read.completion);
  EXPECT_EQ(write.start, 100u);
  EXPECT_EQ(write.completion, 150u);
  engine.Complete(read, sim::IoMode::kBackground);
  engine.Complete(write, sim::IoMode::kBackground);
}

// Foreground completion after the clock moved past the issue instant
// charges only the residual wait and still lands the clock on the
// completion instant.
TEST(IoEngine, OverlappedForegroundCompletion) {
  sim::VirtualClock c;
  IoEngine engine(&c, MultiChannel(2));
  const IoToken t = engine.Submit(0, 100, 0);
  // Unrelated work advances the clock while t is in flight.
  c.Advance(60);
  const sim::Served s = engine.Complete(t, sim::IoMode::kForeground);
  EXPECT_EQ(s.completion, 100u);
  EXPECT_EQ(c.Now(), 100u);  // residual 40ns reaped
  // A completion already in the past must not move the clock backwards.
  const IoToken t2 = engine.Submit(1, 10, 0);
  const sim::Served s2 = engine.Complete(t2, sim::IoMode::kForeground);
  EXPECT_EQ(s2.completion, 10u);
  EXPECT_EQ(c.Now(), 100u);
}

// Abort retires the queue entry without advancing the clock; the unit's
// media-time reservation stays (the die was busy).
TEST(IoEngine, AbortKeepsReservationDropsEntry) {
  sim::VirtualClock c;
  IoEngine engine(&c, IoTopology{});
  const IoToken t = engine.Submit(0, 500, 0);
  EXPECT_EQ(engine.in_flight(), 1u);
  engine.Abort(t);
  EXPECT_EQ(engine.in_flight(), 0u);
  EXPECT_EQ(c.Now(), 0u);
  EXPECT_EQ(engine.busy_until(), 500u);
  // The next request on the unit queues behind the aborted reservation.
  const IoToken t2 = engine.Submit(0, 10, 0);
  EXPECT_EQ(t2.start, 500u);
  engine.Complete(t2, sim::IoMode::kBackground);
}

TEST(IoEngine, UtilizationCountersPerUnit) {
  sim::VirtualClock c;
  // Private registry: engines built on the process-wide sinks share their
  // counters, which would leak counts across tests.
  obs::Registry reg;
  IoEngine engine(&c, MultiChannel(2), &reg);
  engine.Complete(engine.Submit(0, 100, 0), sim::IoMode::kBackground);
  engine.Complete(engine.Submit(1, 40, 0), sim::IoMode::kBackground);
  engine.Complete(engine.Submit(1, 60, 0), sim::IoMode::kBackground);
  EXPECT_EQ(engine.unit_busy_ns(0), 100u);
  EXPECT_EQ(engine.unit_busy_ns(1), 100u);
  EXPECT_EQ(engine.submitted(), 3u);
}

// --- device-level async surface -------------------------------------------

zns::ZnsConfig SmallZns(u32 channels = 1) {
  zns::ZnsConfig c;
  c.zone_size = 256 * kKiB;
  c.zone_capacity = 256 * kKiB;
  c.zone_count = 8;
  c.max_open_zones = 8;
  c.max_active_zones = 8;
  c.store_data = true;
  c.topology.channels = channels;
  c.topology.queue_depth = channels > 1 ? 16 : 1;
  return c;
}

TEST(ZnsAsync, SubmitCompleteMatchesSyncWrite) {
  sim::VirtualClock c1, c2;
  zns::ZnsDevice sync_dev(SmallZns(), &c1);
  zns::ZnsDevice async_dev(SmallZns(), &c2);
  std::vector<std::byte> buf(4 * kKiB, std::byte{0xAB});

  auto w = sync_dev.Write(0, 0, buf, sim::IoMode::kForeground);
  ASSERT_TRUE(w.ok());

  auto t = async_dev.SubmitWrite(0, 0, buf, c2.Now());
  ASSERT_TRUE(t.ok());
  auto done = async_dev.Complete(*t, sim::IoMode::kForeground);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done->latency, w->latency);
  EXPECT_EQ(done->completion, w->completion);
  EXPECT_EQ(c1.Now(), c2.Now());
}

TEST(ZnsAsync, AppendsToDistinctZonesOverlapOnMultichannel) {
  sim::VirtualClock c;
  zns::ZnsDevice dev(SmallZns(/*channels=*/4), &c);
  std::vector<std::byte> buf(16 * kKiB, std::byte{0x5A});
  const SimNanos issue = c.Now();
  std::vector<zns::ZnsDevice::PendingAppend> pending;
  for (u64 zone = 0; zone < 4; ++zone) {
    auto a = dev.SubmitAppend(zone, buf, issue);
    ASSERT_TRUE(a.ok());
    pending.push_back(*a);
  }
  // All four started at the same instant on distinct units.
  SimNanos first_completion = pending[0].token.completion;
  for (const auto& p : pending) {
    EXPECT_EQ(p.token.start, issue);
    EXPECT_EQ(p.token.completion, first_completion);
  }
  EXPECT_EQ(dev.engine().max_in_flight(), 4u);
  for (const auto& p : pending) {
    ASSERT_TRUE(dev.Complete(p.token, sim::IoMode::kBackground).ok());
  }
  // Serial topology serializes the same batch: horizon = 4x one append.
  sim::VirtualClock cs;
  zns::ZnsDevice serial(SmallZns(/*channels=*/1), &cs);
  for (u64 zone = 0; zone < 4; ++zone) {
    auto a = serial.SubmitAppend(zone, buf, 0);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(serial.Complete(a->token, sim::IoMode::kBackground).ok());
  }
  EXPECT_EQ(serial.engine().busy_until(), 4 * first_completion);
}

TEST(ZnsAsync, ReadsLandInCallerBufferAtSubmit) {
  sim::VirtualClock c;
  zns::ZnsDevice dev(SmallZns(), &c);
  std::vector<std::byte> buf(4 * kKiB, std::byte{0x77});
  ASSERT_TRUE(dev.Write(0, 0, buf, sim::IoMode::kBackground).ok());
  std::vector<std::byte> out(4 * kKiB);
  auto t = dev.SubmitRead(0, 0, out, c.Now());
  ASSERT_TRUE(t.ok());
  // Simulation contract: data lands at submit; the token models timing.
  EXPECT_EQ(out, buf);
  ASSERT_TRUE(dev.Complete(*t, sim::IoMode::kBackground).ok());
}

// A crash that fires between submit and complete halts the in-flight entry:
// Complete refuses, the queue entry is retired, and the clock never moves.
TEST(ZnsAsync, CrashHaltsInFlightCompletion) {
  sim::VirtualClock c;
  fault::FaultInjector faults(fault::FaultPlan{});
  zns::ZnsConfig cfg = SmallZns();
  cfg.faults = &faults;
  zns::ZnsDevice dev(cfg, &c);
  std::vector<std::byte> buf(4 * kKiB, std::byte{0x11});

  // Crash after the 2nd device write: the 2nd submit succeeds (its effects
  // are on media) but the machine is down before its completion is reaped.
  faults.ArmCrash(2, fault::CrashMode::kAfterOp);
  auto t1 = dev.SubmitWrite(0, 0, buf, c.Now());
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(dev.Complete(*t1, sim::IoMode::kForeground).ok());
  auto t2 = dev.SubmitWrite(0, buf.size(), buf, c.Now());
  ASSERT_TRUE(t2.ok());
  const SimNanos before = c.Now();
  auto done = dev.Complete(*t2, sim::IoMode::kForeground);
  EXPECT_FALSE(done.ok());
  EXPECT_EQ(c.Now(), before);  // halted completion never advances time
  EXPECT_EQ(dev.engine().in_flight(), 0u);  // entry retired, not leaked
  // The data itself landed at submit (kAfterOp lets the write through).
  std::vector<std::byte> out(buf.size());
  faults.ClearCrash();
  ASSERT_TRUE(dev.Read(0, buf.size(), out, sim::IoMode::kBackground).ok());
  EXPECT_EQ(out, buf);
}

TEST(ZnsAsync, ZoneOpTokenFencesUnit) {
  sim::VirtualClock c;
  zns::ZnsDevice dev(SmallZns(), &c);
  std::vector<std::byte> buf(4 * kKiB, std::byte{0x3C});
  auto t = dev.SubmitWrite(0, 0, buf, c.Now());
  ASSERT_TRUE(t.ok());
  auto fence = dev.SubmitZoneOp(zns::ZnsDevice::ZoneOp::kFinish, 0);
  ASSERT_TRUE(fence.ok());
  // The zero-service fence completes when the unit drains.
  EXPECT_GE(fence->completion, t->completion);
  EXPECT_EQ(dev.GetZoneInfo(0).state, zns::ZoneState::kFull);
  ASSERT_TRUE(dev.Complete(*t, sim::IoMode::kBackground).ok());
  ASSERT_TRUE(dev.Complete(*fence, sim::IoMode::kBackground).ok());
}

}  // namespace
}  // namespace zncache::io
