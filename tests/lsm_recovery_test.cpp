// LSM crash recovery: manifest round-trips, WAL generation scans, and full
// store restarts over a still-populated disk.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "common/random.h"
#include "kv/lsm_store.h"
#include "kv/manifest.h"

namespace zncache::kv {
namespace {

// ------------------------------------------------------------ manifest ----

class ManifestTest : public ::testing::Test {
 protected:
  ManifestTest() : dev_(Config(), &clock_), manifest_(&dev_, 0, 64 * kKiB) {}

  static hdd::HddConfig Config() {
    hdd::HddConfig c;
    c.capacity = 8 * kMiB;
    return c;
  }

  sim::VirtualClock clock_;
  hdd::HddDevice dev_;
  Manifest manifest_;
};

TEST_F(ManifestTest, EmptyDeviceHasNoManifest) {
  auto loaded = manifest_.Load();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(ManifestTest, WriteLoadRoundTrip) {
  ManifestSnapshot snapshot;
  snapshot.next_table_id = 17;
  snapshot.tables.push_back({3, 0, 1000, 500, "aaa", "mmm"});
  snapshot.tables.push_back({9, 2, 9000, 800, "nnn", "zzz"});
  ASSERT_TRUE(manifest_.Write(snapshot).ok());

  auto loaded = manifest_.Load();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->next_table_id, 17u);
  ASSERT_EQ(loaded->tables.size(), 2u);
  EXPECT_EQ(loaded->tables[0].id, 3u);
  EXPECT_EQ(loaded->tables[1].level, 2u);
  EXPECT_EQ(loaded->tables[1].smallest, "nnn");
}

TEST_F(ManifestTest, NewestVersionWins) {
  ManifestSnapshot v1;
  v1.tables.push_back({1, 0, 0, 100, "a", "b"});
  ASSERT_TRUE(manifest_.Write(v1).ok());
  ManifestSnapshot v2;
  v2.tables.push_back({2, 0, 200, 100, "c", "d"});
  ASSERT_TRUE(manifest_.Write(v2).ok());
  ManifestSnapshot v3;
  v3.tables.push_back({3, 1, 400, 100, "e", "f"});
  ASSERT_TRUE(manifest_.Write(v3).ok());

  auto loaded = manifest_.Load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->version, 3u);
  EXPECT_EQ(loaded->tables[0].id, 3u);
}

TEST_F(ManifestTest, SurvivesOneCorruptSlot) {
  ManifestSnapshot v1;
  v1.tables.push_back({1, 0, 0, 100, "a", "b"});
  ASSERT_TRUE(manifest_.Write(v1).ok());  // slot 0
  ManifestSnapshot v2;
  v2.tables.push_back({2, 0, 200, 100, "c", "d"});
  ASSERT_TRUE(manifest_.Write(v2).ok());  // slot 1 (version 2)

  // Corrupt slot 1 (a torn write of the newest snapshot).
  std::vector<std::byte> junk(64 * kKiB, std::byte{0x5A});
  ASSERT_TRUE(dev_.Write(64 * kKiB, std::span<const std::byte>(junk)).ok());

  auto loaded = manifest_.Load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->version, 1u);  // fell back to the older valid slot
  EXPECT_EQ(loaded->tables[0].id, 1u);
}

TEST_F(ManifestTest, OversizedSnapshotRejected) {
  Manifest tiny(&dev_, 0, 128);
  ManifestSnapshot big;
  for (int i = 0; i < 100; ++i) {
    big.tables.push_back({static_cast<u64>(i), 0, 0, 1, "key", "key"});
  }
  EXPECT_EQ(tiny.Write(big).code(), StatusCode::kNoSpace);
}

// ------------------------------------------------------- store recovery ----

class LsmRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clock_ = std::make_unique<sim::VirtualClock>();
    hdd::HddConfig hc;
    hc.capacity = 256 * kMiB;
    hdd_ = std::make_unique<hdd::HddDevice>(hc, clock_.get());
    store_ = NewStore();
  }

  std::unique_ptr<LsmStore> NewStore() {
    LsmConfig c;
    c.memtable_bytes = 16 * kKiB;
    c.block_bytes = 1 * kKiB;
    c.table_target_bytes = 32 * kKiB;
    c.l0_compaction_trigger = 3;
    c.level_base_bytes = 128 * kKiB;
    c.max_levels = 4;
    c.manifest_slot_bytes = 256 * kKiB;
    c.block_cache.capacity_bytes = 64 * kKiB;
    return std::make_unique<LsmStore>(c, hdd_.get(), clock_.get());
  }

  // "Crash": drop the store object, keep the disk.
  void Restart() {
    store_ = NewStore();
    ASSERT_TRUE(store_->Recover().ok());
  }

  bool Found(const std::string& key, std::string* v = nullptr) {
    std::string scratch;
    auto g = store_->Get(key, v != nullptr ? v : &scratch);
    EXPECT_TRUE(g.ok()) << g.status().ToString();
    return g.ok() && g->found;
  }

  std::unique_ptr<sim::VirtualClock> clock_;
  std::unique_ptr<hdd::HddDevice> hdd_;
  std::unique_ptr<LsmStore> store_;
};

TEST_F(LsmRecoveryTest, EmptyDeviceRecoversToEmptyStore) {
  Restart();
  EXPECT_FALSE(Found("anything"));
  // And the recovered store is usable.
  ASSERT_TRUE(store_->Put("k", "v").ok());
  EXPECT_TRUE(Found("k"));
}

TEST_F(LsmRecoveryTest, FlushedDataSurvivesRestart) {
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(store_->Put("key-" + std::to_string(i),
                            "val-" + std::to_string(i))
                    .ok());
  }
  ASSERT_TRUE(store_->Flush().ok());
  Restart();
  std::string v;
  ASSERT_TRUE(Found("key-123", &v));
  EXPECT_EQ(v, "val-123");
  ASSERT_TRUE(Found("key-499", &v));
}

TEST_F(LsmRecoveryTest, UnflushedWalTailReplays) {
  ASSERT_TRUE(store_->Put("durable", "1").ok());
  ASSERT_TRUE(store_->Flush().ok());
  // These stay in the memtable + WAL buffer; sync the WAL as a crash-
  // consistent OS would have for committed writes.
  ASSERT_TRUE(store_->Put("tail-1", "t1").ok());
  ASSERT_TRUE(store_->Put("tail-2", "t2").ok());
  ASSERT_TRUE(store_->Flush().ok() /* syncs WAL */);

  Restart();
  std::string v;
  EXPECT_TRUE(Found("durable"));
  ASSERT_TRUE(Found("tail-2", &v));
  EXPECT_EQ(v, "t2");
}

TEST_F(LsmRecoveryTest, DeletesSurviveRestart) {
  ASSERT_TRUE(store_->Put("k", "v").ok());
  ASSERT_TRUE(store_->Flush().ok());
  ASSERT_TRUE(store_->Delete("k").ok());
  ASSERT_TRUE(store_->Flush().ok());
  Restart();
  EXPECT_FALSE(Found("k"));
}

TEST_F(LsmRecoveryTest, CompactedTreeSurvivesRestart) {
  Rng rng(501);
  std::map<std::string, std::string> truth;
  for (int i = 0; i < 4000; ++i) {
    const std::string key = "key-" + std::to_string(rng.Uniform(700));
    const std::string value = "val-" + std::to_string(i);
    ASSERT_TRUE(store_->Put(key, value).ok());
    truth[key] = value;
  }
  ASSERT_TRUE(store_->Flush().ok());
  ASSERT_GT(store_->stats().compactions, 0u);

  Restart();
  for (const auto& [k, v] : truth) {
    std::string got;
    ASSERT_TRUE(Found(k, &got)) << k;
    EXPECT_EQ(got, v) << k;
  }
}

TEST_F(LsmRecoveryTest, RecoveredStoreKeepsCompactingCorrectly) {
  Rng rng(502);
  std::map<std::string, std::string> truth;
  auto churn = [&](int n) {
    for (int i = 0; i < n; ++i) {
      const std::string key = "key-" + std::to_string(rng.Uniform(500));
      const std::string value = "v" + std::to_string(rng.Next());
      ASSERT_TRUE(store_->Put(key, value).ok());
      truth[key] = value;
    }
  };
  churn(2500);
  ASSERT_TRUE(store_->Flush().ok());
  Restart();
  churn(2500);  // keep writing after recovery: ids, allocator, manifest
  ASSERT_TRUE(store_->Flush().ok());
  Restart();  // and a second restart
  for (const auto& [k, v] : truth) {
    std::string got;
    ASSERT_TRUE(Found(k, &got)) << k;
    EXPECT_EQ(got, v) << k;
  }
}

TEST_F(LsmRecoveryTest, ScanWorksAfterRecovery) {
  for (int i = 0; i < 300; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key-%04d", i);
    ASSERT_TRUE(store_->Put(buf, "v").ok());
  }
  ASSERT_TRUE(store_->Flush().ok());
  Restart();
  auto r = store_->Scan("key-0100", 10);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->entries.size(), 10u);
  EXPECT_EQ(r->entries[0].key, "key-0100");
}

TEST_F(LsmRecoveryTest, RecoverRefusedAfterUse) {
  ASSERT_TRUE(store_->Put("k", "v").ok());
  EXPECT_EQ(store_->Recover().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace zncache::kv
