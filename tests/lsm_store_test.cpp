#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "common/random.h"
#include "kv/db_bench.h"
#include "kv/lsm_store.h"

namespace zncache::kv {
namespace {

class LsmStoreTest : public ::testing::Test {
 protected:
  void Make(LsmConfig cfg = SmallConfig()) {
    clock_ = std::make_unique<sim::VirtualClock>();
    hdd::HddConfig hc;
    hc.capacity = 256 * kMiB;
    hdd_ = std::make_unique<hdd::HddDevice>(hc, clock_.get());
    store_ = std::make_unique<LsmStore>(cfg, hdd_.get(), clock_.get());
  }

  static LsmConfig SmallConfig() {
    LsmConfig c;
    c.memtable_bytes = 16 * kKiB;
    c.block_bytes = 1 * kKiB;
    c.table_target_bytes = 32 * kKiB;
    c.l0_compaction_trigger = 3;
    c.level_base_bytes = 128 * kKiB;
    c.max_levels = 4;
    c.block_cache.capacity_bytes = 64 * kKiB;
    return c;
  }

  void SetUp() override { Make(); }

  bool Found(const std::string& key, std::string* v = nullptr) {
    std::string scratch;
    auto g = store_->Get(key, v != nullptr ? v : &scratch);
    EXPECT_TRUE(g.ok()) << g.status().ToString();
    return g.ok() && g->found;
  }

  std::unique_ptr<sim::VirtualClock> clock_;
  std::unique_ptr<hdd::HddDevice> hdd_;
  std::unique_ptr<LsmStore> store_;
};

TEST_F(LsmStoreTest, GetMissesOnEmpty) { EXPECT_FALSE(Found("nothing")); }

TEST_F(LsmStoreTest, PutGetFromMemtable) {
  ASSERT_TRUE(store_->Put("k", "v").ok());
  std::string v;
  ASSERT_TRUE(Found("k", &v));
  EXPECT_EQ(v, "v");
}

TEST_F(LsmStoreTest, GetAfterFlushReadsSstable) {
  ASSERT_TRUE(store_->Put("k", "persisted").ok());
  ASSERT_TRUE(store_->Flush().ok());
  EXPECT_EQ(store_->TablesAtLevel(0), 1u);
  std::string v;
  ASSERT_TRUE(Found("k", &v));
  EXPECT_EQ(v, "persisted");
}

TEST_F(LsmStoreTest, OverwriteAcrossFlushes) {
  ASSERT_TRUE(store_->Put("k", "old").ok());
  ASSERT_TRUE(store_->Flush().ok());
  ASSERT_TRUE(store_->Put("k", "new").ok());
  std::string v;
  ASSERT_TRUE(Found("k", &v));
  EXPECT_EQ(v, "new");
  ASSERT_TRUE(store_->Flush().ok());
  ASSERT_TRUE(Found("k", &v));
  EXPECT_EQ(v, "new");
}

TEST_F(LsmStoreTest, DeleteShadowsOlderVersions) {
  ASSERT_TRUE(store_->Put("k", "v").ok());
  ASSERT_TRUE(store_->Flush().ok());
  ASSERT_TRUE(store_->Delete("k").ok());
  EXPECT_FALSE(Found("k"));
  ASSERT_TRUE(store_->Flush().ok());
  EXPECT_FALSE(Found("k"));
}

TEST_F(LsmStoreTest, CompactionTriggersAndPreservesData) {
  // Write enough to force memtable flushes and L0 compactions.
  std::map<std::string, std::string> truth;
  Rng rng(71);
  for (int i = 0; i < 4000; ++i) {
    const std::string key = "key-" + std::to_string(rng.Uniform(800));
    const std::string value = "val-" + std::to_string(i);
    ASSERT_TRUE(store_->Put(key, value).ok());
    truth[key] = value;
  }
  ASSERT_TRUE(store_->Flush().ok());
  EXPECT_GT(store_->stats().compactions, 0u);
  EXPECT_GT(store_->stats().memtable_flushes, 0u);

  for (const auto& [k, v] : truth) {
    std::string got;
    ASSERT_TRUE(Found(k, &got)) << k;
    EXPECT_EQ(got, v) << k;
  }
}

TEST_F(LsmStoreTest, DeletesSurviveCompaction) {
  Rng rng(72);
  std::map<std::string, bool> alive;
  for (int i = 0; i < 3000; ++i) {
    const std::string key = "key-" + std::to_string(rng.Uniform(400));
    if (rng.Chance(0.3)) {
      ASSERT_TRUE(store_->Delete(key).ok());
      alive[key] = false;
    } else {
      ASSERT_TRUE(store_->Put(key, "v" + std::to_string(i)).ok());
      alive[key] = true;
    }
  }
  ASSERT_TRUE(store_->Flush().ok());
  for (const auto& [k, is_alive] : alive) {
    EXPECT_EQ(Found(k), is_alive) << k;
  }
}

TEST_F(LsmStoreTest, LevelsStayWithinShape) {
  Rng rng(73);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(store_
                    ->Put("key-" + std::to_string(rng.Uniform(3000)),
                          std::string(32, 'v'))
                    .ok());
  }
  ASSERT_TRUE(store_->Flush().ok());
  // L0 is bounded by the trigger; L1+ tables must be sorted, non-overlapping.
  EXPECT_LE(store_->TablesAtLevel(0), 3u);
}

TEST_F(LsmStoreTest, MissLatencyReflectsHddSeek) {
  ASSERT_TRUE(store_->Put("k", "v").ok());
  ASSERT_TRUE(store_->Flush().ok());
  // First read of a cold block pays the disk seek.
  auto g = store_->Get("k", nullptr);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->found);
  EXPECT_GE(g->latency, 1 * sim::kMillisecond);
}

TEST_F(LsmStoreTest, BlockCacheAbsorbsRepeatReads) {
  ASSERT_TRUE(store_->Put("k", "v").ok());
  ASSERT_TRUE(store_->Flush().ok());
  (void)store_->Get("k", nullptr);
  const u64 disk_reads = store_->stats().disk_block_reads;
  auto g = store_->Get("k", nullptr);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(store_->stats().disk_block_reads, disk_reads);  // cached
  EXPECT_LT(g->latency, 1 * sim::kMillisecond);
}

TEST_F(LsmStoreTest, WalRecoverySource) {
  // (Recovery is exercised at the WAL level; here we check the stats hook.)
  ASSERT_TRUE(store_->Put("a", "1").ok());
  EXPECT_EQ(store_->stats().puts, 1u);
}

TEST_F(LsmStoreTest, DbBenchFillAndReadRandom) {
  DbBenchConfig cfg;
  cfg.num_keys = 2000;
  cfg.reads = 500;
  cfg.exp_range = 15.0;
  DbBench bench(cfg);
  ASSERT_TRUE(bench.FillRandom(*store_).ok());
  auto r = bench.ReadRandom(*store_, *clock_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->reads, 500u);
  // fillrandom with duplicates covers most of the key space; the skewed
  // reads should overwhelmingly find their keys.
  EXPECT_GT(r->found, 300u);
  EXPECT_GT(r->ops_per_sec, 0.0);
  EXPECT_GT(r->P99(), 0u);
}

TEST_F(LsmStoreTest, DbBenchKeyFormat) {
  DbBenchConfig cfg;
  cfg.key_bytes = 16;
  DbBench bench(cfg);
  EXPECT_EQ(bench.KeyFor(42).size(), 16u);
  EXPECT_LT(bench.KeyFor(41), bench.KeyFor(42));
  EXPECT_LT(bench.KeyFor(9), bench.KeyFor(10));  // zero-padded
}

TEST_F(LsmStoreTest, DbBenchSeekRandom) {
  DbBenchConfig cfg;
  cfg.num_keys = 2000;
  cfg.reads = 200;
  cfg.exp_range = 15.0;
  DbBench bench(cfg);
  ASSERT_TRUE(bench.FillRandom(*store_).ok());
  auto r = bench.SeekRandom(*store_, *clock_, 10);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->reads, 200u);
  EXPECT_GT(r->found, 150u);  // scans rarely come back empty
}

TEST_F(LsmStoreTest, DbBenchReadWhileWriting) {
  DbBenchConfig cfg;
  cfg.num_keys = 2000;
  cfg.reads = 1000;
  cfg.exp_range = 15.0;
  DbBench bench(cfg);
  ASSERT_TRUE(bench.FillRandom(*store_).ok());
  const u64 puts_before = store_->stats().puts;
  auto r = bench.ReadWhileWriting(*store_, *clock_, 0.2);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // ~20% of ops were writes.
  const u64 writes = store_->stats().puts - puts_before;
  EXPECT_NEAR(static_cast<double>(writes) / 1000, 0.2, 0.05);
  EXPECT_GT(r->found, 0u);
}

TEST_F(LsmStoreTest, ResetCacheKeepsData) {
  ASSERT_TRUE(store_->Put("k", "v").ok());
  ASSERT_TRUE(store_->Flush().ok());
  BlockCacheConfig bc;
  bc.capacity_bytes = 8 * kKiB;
  store_->ResetCache(bc, nullptr);
  std::string v;
  ASSERT_TRUE(Found("k", &v));
  EXPECT_EQ(v, "v");
}

}  // namespace
}  // namespace zncache::kv
