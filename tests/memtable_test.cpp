#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/random.h"
#include "kv/memtable.h"

namespace zncache::kv {
namespace {

TEST(MemTable, EmptyLookupMisses) {
  MemTable m;
  std::string v;
  EXPECT_EQ(m.Get("a", &v), MemTable::LookupResult::kNotFound);
  EXPECT_TRUE(m.empty());
}

TEST(MemTable, PutGet) {
  MemTable m;
  m.Put("key", "value");
  std::string v;
  EXPECT_EQ(m.Get("key", &v), MemTable::LookupResult::kFound);
  EXPECT_EQ(v, "value");
  EXPECT_EQ(m.entry_count(), 1u);
}

TEST(MemTable, OverwriteKeepsSingleEntry) {
  MemTable m;
  m.Put("key", "v1");
  m.Put("key", "v2");
  std::string v;
  EXPECT_EQ(m.Get("key", &v), MemTable::LookupResult::kFound);
  EXPECT_EQ(v, "v2");
  EXPECT_EQ(m.entry_count(), 1u);
}

TEST(MemTable, DeleteCreatesTombstone) {
  MemTable m;
  m.Put("key", "v");
  m.Delete("key");
  std::string v;
  EXPECT_EQ(m.Get("key", &v), MemTable::LookupResult::kDeleted);
}

TEST(MemTable, DeleteOfAbsentKeyStillTombstones) {
  MemTable m;
  m.Delete("ghost");
  std::string v;
  EXPECT_EQ(m.Get("ghost", &v), MemTable::LookupResult::kDeleted);
}

TEST(MemTable, PutAfterDeleteRevives) {
  MemTable m;
  m.Put("k", "v1");
  m.Delete("k");
  m.Put("k", "v2");
  std::string v;
  EXPECT_EQ(m.Get("k", &v), MemTable::LookupResult::kFound);
  EXPECT_EQ(v, "v2");
}

TEST(MemTable, IterationIsSorted) {
  MemTable m;
  Rng rng(51);
  for (int i = 0; i < 1000; ++i) {
    m.Put("k" + std::to_string(rng.Uniform(10'000)), "v");
  }
  std::string prev;
  bool first = true;
  m.ForEach([&](std::string_view k, std::string_view, bool) {
    if (!first) {
      EXPECT_LT(prev, std::string(k));
    }
    prev.assign(k);
    first = false;
  });
}

TEST(MemTable, IterationSeesTombstoneFlag) {
  MemTable m;
  m.Put("a", "1");
  m.Delete("b");
  int tombstones = 0, values = 0;
  m.ForEach([&](std::string_view, std::string_view, bool del) {
    del ? tombstones++ : values++;
  });
  EXPECT_EQ(tombstones, 1);
  EXPECT_EQ(values, 1);
}

TEST(MemTable, BytesGrowAndTrackOverwrites) {
  MemTable m;
  const u64 empty = m.ApproximateBytes();
  m.Put("key", std::string(1000, 'v'));
  const u64 after_put = m.ApproximateBytes();
  EXPECT_GT(after_put, empty + 1000);
  m.Put("key", std::string(10, 'v'));
  EXPECT_LT(m.ApproximateBytes(), after_put);
}

TEST(MemTable, MatchesReferenceMap) {
  MemTable m;
  std::map<std::string, std::string> ref;
  Rng rng(52);
  for (int i = 0; i < 5000; ++i) {
    const std::string key = "k" + std::to_string(rng.Uniform(500));
    if (rng.Chance(0.2)) {
      m.Delete(key);
      ref[key] = "";  // tombstone marker
    } else {
      const std::string value = "v" + std::to_string(i);
      m.Put(key, value);
      ref[key] = value;
    }
  }
  for (const auto& [k, v] : ref) {
    std::string got;
    if (v.empty()) {
      EXPECT_EQ(m.Get(k, &got), MemTable::LookupResult::kDeleted) << k;
    } else {
      ASSERT_EQ(m.Get(k, &got), MemTable::LookupResult::kFound) << k;
      EXPECT_EQ(got, v);
    }
  }
}

TEST(MemTable, LongKeysAndValues) {
  MemTable m;
  const std::string key(500, 'k');
  const std::string value(100'000, 'v');
  m.Put(key, value);
  std::string got;
  ASSERT_EQ(m.Get(key, &got), MemTable::LookupResult::kFound);
  EXPECT_EQ(got.size(), value.size());
}

}  // namespace
}  // namespace zncache::kv
