#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/random.h"
#include "middle/zone_translation_layer.h"

namespace zncache::middle {
namespace {

constexpr u64 kRegion = 64 * kKiB;

zns::ZnsConfig DeviceConfig(u64 zones = 16, u64 zone_cap = 256 * kKiB) {
  zns::ZnsConfig c;
  c.zone_count = zones;
  c.zone_size = zone_cap;
  c.zone_capacity = zone_cap;
  c.max_open_zones = 8;
  c.max_active_zones = 10;
  return c;
}

class MiddleLayerTest : public ::testing::Test {
 protected:
  void Make(MiddleLayerConfig ml, zns::ZnsConfig dev = DeviceConfig()) {
    clock_ = std::make_unique<sim::VirtualClock>();
    dev_ = std::make_unique<zns::ZnsDevice>(dev, clock_.get());
    layer_ = std::make_unique<ZoneTranslationLayer>(ml, dev_.get());
    ASSERT_TRUE(layer_->ValidateConfig().ok())
        << layer_->ValidateConfig().ToString();
  }

  void SetUp() override {
    MiddleLayerConfig ml;
    ml.region_size = kRegion;
    ml.region_slots = 40;  // 64 physical slots on 16 zones x 4 slots
    ml.open_zones = 2;
    ml.min_empty_zones = 3;
    Make(ml);
  }

  std::vector<std::byte> RegionData(char fill) {
    return std::vector<std::byte>(kRegion, std::byte(fill));
  }

  Status Write(u64 rid, char fill) {
    auto data = RegionData(fill);
    auto r = layer_->WriteRegion(rid, data, sim::IoMode::kForeground);
    return r.ok() ? Status::Ok() : r.status();
  }

  char ReadFirstByte(u64 rid) {
    std::vector<std::byte> out(16);
    auto r = layer_->ReadRegion(rid, 0, out);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return static_cast<char>(out[0]);
  }

  std::unique_ptr<sim::VirtualClock> clock_;
  std::unique_ptr<zns::ZnsDevice> dev_;
  std::unique_ptr<ZoneTranslationLayer> layer_;
};

TEST_F(MiddleLayerTest, ConfigValidation) {
  MiddleLayerConfig bad;
  bad.region_size = 1 * kMiB;  // larger than the 256 KiB zone
  bad.region_slots = 4;
  sim::VirtualClock clk;
  zns::ZnsDevice dev(DeviceConfig(), &clk);
  ZoneTranslationLayer l(bad, &dev);
  EXPECT_FALSE(l.ValidateConfig().ok());

  MiddleLayerConfig too_many;
  too_many.region_size = kRegion;
  too_many.region_slots = 64;  // every physical slot, no OP
  ZoneTranslationLayer l2(too_many, &dev);
  EXPECT_FALSE(l2.ValidateConfig().ok());
}

TEST_F(MiddleLayerTest, WriteCreatesMapping) {
  ASSERT_TRUE(Write(7, 'a').ok());
  auto loc = layer_->GetLocation(7);
  ASSERT_TRUE(loc.has_value());
  EXPECT_TRUE(layer_->IsSlotValid(loc->zone, loc->slot));
  EXPECT_EQ(layer_->ZoneValidCount(loc->zone), 1u);
}

TEST_F(MiddleLayerTest, ReadBackMatches) {
  ASSERT_TRUE(Write(3, 'z').ok());
  EXPECT_EQ(ReadFirstByte(3), 'z');
}

TEST_F(MiddleLayerTest, ReadAtOffset) {
  std::vector<std::byte> data(kRegion);
  for (size_t i = 0; i < data.size(); ++i) data[i] = std::byte(i % 200);
  ASSERT_TRUE(layer_->WriteRegion(0, data, sim::IoMode::kForeground).ok());
  std::vector<std::byte> out(100);
  ASSERT_TRUE(layer_->ReadRegion(0, 5000, out).ok());
  EXPECT_EQ(std::memcmp(data.data() + 5000, out.data(), 100), 0);
}

TEST_F(MiddleLayerTest, ReadUnmappedFails) {
  std::vector<std::byte> out(16);
  EXPECT_EQ(layer_->ReadRegion(5, 0, out).status().code(),
            StatusCode::kNotFound);
}

TEST_F(MiddleLayerTest, BadRegionIdRejected) {
  EXPECT_EQ(Write(1000, 'x').code(), StatusCode::kOutOfRange);
  std::vector<std::byte> out(1);
  EXPECT_EQ(layer_->ReadRegion(1000, 0, out).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(layer_->InvalidateRegion(1000).code(), StatusCode::kOutOfRange);
}

TEST_F(MiddleLayerTest, RewriteMovesRegionAndClearsOldSlot) {
  ASSERT_TRUE(Write(1, 'a').ok());
  const auto old_loc = layer_->GetLocation(1);
  ASSERT_TRUE(old_loc.has_value());
  ASSERT_TRUE(Write(1, 'b').ok());
  const auto new_loc = layer_->GetLocation(1);
  ASSERT_TRUE(new_loc.has_value());
  EXPECT_NE(*old_loc, *new_loc);
  EXPECT_FALSE(layer_->IsSlotValid(old_loc->zone, old_loc->slot));
  EXPECT_EQ(ReadFirstByte(1), 'b');
}

TEST_F(MiddleLayerTest, InvalidateClearsMapping) {
  ASSERT_TRUE(Write(2, 'c').ok());
  ASSERT_TRUE(layer_->InvalidateRegion(2).ok());
  EXPECT_FALSE(layer_->GetLocation(2).has_value());
  std::vector<std::byte> out(1);
  EXPECT_FALSE(layer_->ReadRegion(2, 0, out).ok());
}

TEST_F(MiddleLayerTest, InvalidateIsIdempotent) {
  ASSERT_TRUE(Write(2, 'c').ok());
  ASSERT_TRUE(layer_->InvalidateRegion(2).ok());
  ASSERT_TRUE(layer_->InvalidateRegion(2).ok());
}

TEST_F(MiddleLayerTest, ConcurrentOpenZones) {
  // With open_zones = 2, consecutive writes alternate between two zones.
  ASSERT_TRUE(Write(0, 'a').ok());
  ASSERT_TRUE(Write(1, 'b').ok());
  const auto l0 = layer_->GetLocation(0);
  const auto l1 = layer_->GetLocation(1);
  EXPECT_NE(l0->zone, l1->zone);
}

TEST_F(MiddleLayerTest, FullyInvalidZoneResetImmediately) {
  // Fill one zone's 4 slots with 4 regions, then invalidate all of them.
  // (With 2 open zones, regions alternate; 8 writes fill both zones.)
  for (u64 r = 0; r < 8; ++r) ASSERT_TRUE(Write(r, 'x').ok());
  const auto loc = layer_->GetLocation(0);
  ASSERT_TRUE(loc.has_value());
  const u64 zone = loc->zone;
  const u64 resets_before = layer_->stats().zones_reset;
  for (u64 r = 0; r < 8; ++r) {
    if (layer_->GetLocation(r) && layer_->GetLocation(r)->zone == zone) {
      ASSERT_TRUE(layer_->InvalidateRegion(r).ok());
    }
  }
  EXPECT_GT(layer_->stats().zones_reset, resets_before);
  EXPECT_EQ(dev_->GetZoneInfo(zone).state, zns::ZoneState::kEmpty);
}

TEST_F(MiddleLayerTest, WaIsOneWithoutMigration) {
  for (u64 r = 0; r < 20; ++r) ASSERT_TRUE(Write(r, 'w').ok());
  EXPECT_DOUBLE_EQ(layer_->stats().WriteAmplification(), 1.0);
}

TEST_F(MiddleLayerTest, GcKeepsWatermarkOfEmptyZones) {
  // Churn rewrites well past the device size; GC must keep empty zones at
  // or near the watermark and never run out.
  Rng rng(31);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(Write(rng.Uniform(40), char('a' + i % 26)).ok());
  }
  EXPECT_GE(layer_->EmptyZones(), 1u);
  EXPECT_GT(layer_->stats().gc_runs, 0u);
}

TEST_F(MiddleLayerTest, GcPreservesAllValidRegions) {
  std::map<u64, char> truth;
  Rng rng(32);
  for (int i = 0; i < 800; ++i) {
    const u64 rid = rng.Uniform(40);
    const char fill = static_cast<char>('a' + i % 26);
    ASSERT_TRUE(Write(rid, fill).ok());
    truth[rid] = fill;
    if (i % 7 == 0) {
      const u64 victim = rng.Uniform(40);
      ASSERT_TRUE(layer_->InvalidateRegion(victim).ok());
      truth.erase(victim);
    }
  }
  ASSERT_GT(layer_->stats().migrated_regions, 0u);
  for (const auto& [rid, fill] : truth) {
    EXPECT_EQ(ReadFirstByte(rid), fill) << "region " << rid;
  }
}

TEST_F(MiddleLayerTest, BitmapMatchesMappingInvariant) {
  Rng rng(33);
  for (int i = 0; i < 600; ++i) {
    const u64 rid = rng.Uniform(40);
    if (rng.Chance(0.3)) {
      ASSERT_TRUE(layer_->InvalidateRegion(rid).ok());
    } else {
      ASSERT_TRUE(Write(rid, 'p').ok());
    }
  }
  // Every mapping must point at a valid bitmap bit owned by that region,
  // and per-zone valid counts must equal the number of set bits.
  std::map<u64, u64> zone_valid;
  for (u64 rid = 0; rid < 40; ++rid) {
    auto loc = layer_->GetLocation(rid);
    if (!loc) continue;
    EXPECT_TRUE(layer_->IsSlotValid(loc->zone, loc->slot));
    zone_valid[loc->zone]++;
  }
  for (u64 z = 0; z < dev_->zone_count(); ++z) {
    EXPECT_EQ(layer_->ZoneValidCount(z), zone_valid[z]) << "zone " << z;
  }
}

TEST_F(MiddleLayerTest, MigrationCountsInWa) {
  Rng rng(34);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(Write(rng.Uniform(40), 'm').ok());
  }
  if (layer_->stats().migrated_regions > 0) {
    EXPECT_GT(layer_->stats().WriteAmplification(), 1.0);
    EXPECT_EQ(layer_->stats().migrated_bytes,
              layer_->stats().migrated_regions * kRegion);
  }
}

TEST_F(MiddleLayerTest, PayloadSizeValidated) {
  std::vector<std::byte> small(100, std::byte{1});
  // Short payloads are allowed (padded internally).
  EXPECT_TRUE(layer_->WriteRegion(0, small, sim::IoMode::kForeground).ok());
  std::vector<std::byte> big(kRegion + 1, std::byte{1});
  EXPECT_FALSE(layer_->WriteRegion(0, big, sim::IoMode::kForeground).ok());
  std::vector<std::byte> empty;
  EXPECT_FALSE(layer_->WriteRegion(0, empty, sim::IoMode::kForeground).ok());
}

// --- co-design (hinted GC) ------------------------------------------------

class DropAllHints : public GcHintProvider {
 public:
  bool TryDropRegion(u64 region_id) override {
    dropped.insert(region_id);
    dropped_calls++;
    return true;
  }
  std::set<u64> dropped;
  u64 dropped_calls = 0;
};

class DropNothingHints : public GcHintProvider {
 public:
  bool TryDropRegion(u64) override {
    asked++;
    return false;
  }
  int asked = 0;
};

TEST_F(MiddleLayerTest, HintedGcDropsInsteadOfMigrating) {
  DropAllHints hints;
  layer_->set_hint_provider(&hints);
  Rng rng(35);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(Write(rng.Uniform(40), 'h').ok());
  }
  EXPECT_GT(layer_->stats().dropped_regions, 0u);
  EXPECT_EQ(layer_->stats().migrated_regions, 0u);
  EXPECT_DOUBLE_EQ(layer_->stats().WriteAmplification(), 1.0);
  EXPECT_EQ(layer_->stats().dropped_regions, hints.dropped_calls);
}

TEST_F(MiddleLayerTest, DecliningHintsFallBackToMigration) {
  DropNothingHints hints;
  layer_->set_hint_provider(&hints);
  Rng rng(36);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(Write(rng.Uniform(40), 'n').ok());
  }
  EXPECT_GT(hints.asked, 0);
  EXPECT_GT(layer_->stats().migrated_regions, 0u);
}

TEST_F(MiddleLayerTest, GcPrefersEmptierZones) {
  // Write regions so zones fill, then invalidate most regions of the first
  // zones; GC should reset those cheap zones and migrate little.
  Rng rng(37);
  for (u64 r = 0; r < 40; ++r) ASSERT_TRUE(Write(r, 'g').ok());
  // Invalidate 30 of 40 -> most zones nearly empty.
  for (u64 r = 0; r < 30; ++r) ASSERT_TRUE(layer_->InvalidateRegion(r).ok());
  const u64 migrated_before = layer_->stats().migrated_regions;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(Write(rng.Uniform(30), 'G').ok());
  }
  // Migration happened but the valid-ratio preference keeps it bounded:
  // migrated regions should be well below host writes.
  const u64 migrated = layer_->stats().migrated_regions - migrated_before;
  EXPECT_LT(migrated, 100u);
}

}  // namespace
}  // namespace zncache::middle
