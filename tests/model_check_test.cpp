// The model-checking harness checking itself: determinism witnesses
// (fingerprints), history serialization, the payload codecs' tamper
// detection, oracle semantics, and the mutation smoke — arming the
// deliberately-injected middle-layer bug must produce a divergence whose
// shrunk history replays to the same failure class.
#include <gtest/gtest.h>

#include <string>

#include "check/cache_model.h"
#include "check/checker.h"
#include "check/history.h"
#include "check/interpreter.h"
#include "check/shrink.h"

namespace zncache::check {
namespace {

// ------------------------------------------------------------ history ----

TEST(History, SerializeParseRoundTrip) {
  HistoryConfig config;
  config.level = Level::kMiddle;
  config.seed = 42;
  config.plan = "seed=42;ioerr:p=0.01;torn:p=0.005";
  GeneratorOptions gen;
  gen.ops = 300;
  const History h = GenerateHistory(config, gen);

  auto parsed = History::Parse(h.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Serialize(), h.Serialize());
  EXPECT_EQ(parsed->Fingerprint(), h.Fingerprint());
  EXPECT_EQ(parsed->ops.size(), h.ops.size());
  EXPECT_EQ(parsed->config.plan, config.plan);
}

TEST(History, GenerationIsDeterministic) {
  HistoryConfig config;
  config.seed = 7;
  GeneratorOptions gen;
  gen.ops = 500;
  const History a = GenerateHistory(config, gen);
  const History b = GenerateHistory(config, gen);
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());

  config.seed = 8;
  const History c = GenerateHistory(config, gen);
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());
}

TEST(History, RunIsDeterministic) {
  HistoryConfig config;
  config.level = Level::kMiddle;
  config.seed = 11;
  GeneratorOptions gen;
  gen.ops = 400;
  const History h = GenerateHistory(config, gen);

  const RunResult a = RunHistory(h);
  const RunResult b = RunHistory(h);
  EXPECT_TRUE(a.ok) << a.Describe();
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.writes_seen, b.writes_seen);
  EXPECT_EQ(a.fault_fingerprint, b.fault_fingerprint);
}

TEST(History, ParseRejectsGarbage) {
  EXPECT_FALSE(History::Parse("not a history").ok());
  EXPECT_FALSE(History::Parse("").ok());
}

// ------------------------------------------------------ payload codecs ----

TEST(ValueCodec, RoundTripAndTamperDetection) {
  const std::string key = KeyName(3);
  const std::string v = MakeValue(key, 17, 4096);
  auto seq = CheckValueBytes(key, v);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  EXPECT_EQ(*seq, 17u);

  // Wrong key: header parses but belongs to someone else.
  EXPECT_FALSE(CheckValueBytes(KeyName(4), v).ok());
  // Truncation.
  EXPECT_FALSE(CheckValueBytes(key, std::string_view(v).substr(0, 100)).ok());
  // A single flipped pattern byte.
  std::string torn = v;
  torn[2000] ^= 1;
  EXPECT_FALSE(CheckValueBytes(key, torn).ok());
  // A shifted payload (prefix of one value glued after another's header)
  // cannot parse clean either.
  std::string shifted = v.substr(0, kValueHeaderBytes) +
                        MakeValue(key, 18, 4096).substr(kValueHeaderBytes);
  EXPECT_FALSE(CheckValueBytes(key, shifted).ok());
}

TEST(RegionCodec, RoundTripAndTamperDetection) {
  std::vector<std::byte> img(8192);
  FillRegionImage(5, 99, img);
  auto seq = CheckRegionImage(5, img);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  EXPECT_EQ(*seq, 99u);

  EXPECT_FALSE(CheckRegionImage(6, img).ok());  // wrong rid
  img[4000] ^= std::byte{1};
  EXPECT_FALSE(CheckRegionImage(5, img).ok());  // flipped byte
}

// ------------------------------------------------------------- oracles ----

TEST(CacheModelOracle, MissAlwaysLegalHitMustBeLatest) {
  CacheModel m;
  m.OnSet(1, 10, 4096, /*acked=*/true);
  // Miss after an acked set: legal (eviction).
  EXPECT_FALSE(m.OnGet(1, false, "").has_value());
  // Hit with the latest version: legal.
  EXPECT_FALSE(m.OnGet(1, true, MakeValue(KeyName(1), 10, 4096)).has_value());
  // Hit with a never-written version: divergence.
  auto d = m.OnGet(1, true, MakeValue(KeyName(1), 11, 4096));
  ASSERT_TRUE(d.has_value());
  // Hit on a never-set key: phantom.
  EXPECT_TRUE(m.OnGet(2, true, MakeValue(KeyName(2), 1, 4096)).has_value());
}

TEST(CacheModelOracle, StaleHitAfterOverwriteDiverges) {
  CacheModel m;
  m.OnSet(1, 10, 4096, true);
  m.OnSet(1, 11, 4096, true);
  EXPECT_TRUE(m.OnGet(1, true, MakeValue(KeyName(1), 10, 4096)).has_value());
  EXPECT_FALSE(m.OnGet(1, true, MakeValue(KeyName(1), 11, 4096)).has_value());
}

TEST(CacheModelOracle, RestartAllowsAnyAckedVersion) {
  CacheModel m;
  m.OnSet(1, 10, 4096, true);
  m.OnSet(1, 11, 4096, true);
  m.OnSet(1, 12, 4096, /*acked=*/false);  // failed write: "maybe" durable
  m.OnRestart();
  // Resurrection of any acked or maybe-landed version is legal...
  EXPECT_FALSE(m.OnGet(1, true, MakeValue(KeyName(1), 10, 4096)).has_value());
  EXPECT_FALSE(m.OnGet(1, true, MakeValue(KeyName(1), 12, 4096)).has_value());
  // ...but a version that was never written is not.
  EXPECT_TRUE(m.OnGet(1, true, MakeValue(KeyName(1), 13, 4096)).has_value());
}

TEST(CacheModelOracle, DeletedKeyMustMissUntilNextSet) {
  CacheModel m;
  m.OnSet(1, 10, 4096, true);
  m.OnDelete(1, true);
  EXPECT_TRUE(m.OnGet(1, true, MakeValue(KeyName(1), 10, 4096)).has_value());
  EXPECT_FALSE(m.OnGet(1, false, "").has_value());
}

TEST(MiddleModelOracle, LiveMappingMustRead) {
  MiddleModel m;
  m.OnWrite(3, 50, /*acked=*/true, /*lost_publish_race=*/false);
  // A live mapping failing to read back is a loss.
  EXPECT_TRUE(
      m.OnRead(3, MiddleModel::ReadOutcome::kFailed, 0).has_value());
  EXPECT_FALSE(m.OnRead(3, MiddleModel::ReadOutcome::kOk, 50).has_value());
  // Stale seq on a strict mapping diverges.
  EXPECT_TRUE(m.OnRead(3, MiddleModel::ReadOutcome::kOk, 49).has_value());
  m.OnInvalidate(3, true);
  EXPECT_FALSE(
      m.OnRead(3, MiddleModel::ReadOutcome::kFailed, 0).has_value());
}

TEST(MiddleModelOracle, LostPublishRaceMeansUnmapped) {
  MiddleModel m;
  // The write acked but an intruder invalidate inside the pre-publish
  // window beat the publish: the slot is dead, a failed read is expected
  // and a successful one is a phantom while the machine stays up.
  m.OnWrite(4, 60, /*acked=*/true, /*lost_publish_race=*/true);
  EXPECT_FALSE(
      m.OnRead(4, MiddleModel::ReadOutcome::kFailed, 0).has_value());
  EXPECT_TRUE(m.OnRead(4, MiddleModel::ReadOutcome::kOk, 60).has_value());
  // After a power cycle the lost write's durable slot may legitimately
  // resurface ("maybe" set) — but only with its own seq.
  m.OnRestart();
  EXPECT_FALSE(m.OnRead(4, MiddleModel::ReadOutcome::kOk, 60).has_value());
  EXPECT_TRUE(m.OnRead(4, MiddleModel::ReadOutcome::kOk, 61).has_value());
}

// ----------------------------------------------------------- self-test ----

TEST(SelfTest, BoundedSweepIsClean) {
  SelfTestOptions opts;
  opts.seed = 3;
  opts.ops = 250;
  opts.crash_points = 2;
  opts.shrink_on_failure = false;
  const SelfTestReport report = RunSelfTest(opts);
  EXPECT_GT(report.runs, 0u);
  std::string detail;
  for (const SelfTestFailure& f : report.failures) {
    detail += f.label + ": " + f.result.Describe() + "\n";
  }
  EXPECT_TRUE(report.ok()) << detail;
}

TEST(SelfTest, FaultModePlanEmbedsSeed) {
  EXPECT_NE(FaultModePlan(5).find("seed=5"), std::string::npos);
  EXPECT_NE(FaultModePlan(5), FaultModePlan(6));
}

// The harness's reason to exist: revert the PR-4 unpublished-slot pin (via
// the mutation knob) and the checker must catch it, and the ddmin-shrunk
// history must replay to the same failure class.
TEST(SelfTest, MutationSmokeCatchesUnpublishedPinRevert) {
  SelfTestOptions opts;
  // Seed re-pinned when the generator gained read-preretry intrusions (the
  // draw stream shifted); 33 trips the unpinned-slot race within 800 ops.
  opts.seed = 33;
  opts.ops = 800;
  opts.schemes.clear();  // middle level only: fastest path to the bug
  // Plain mode (intrusions at the publish-window hooks, no faults) trips
  // the unpinned-slot race earliest: GC steals the reserved-but-unpublished
  // slot and the in-flight mapping lands on reused ground.
  opts.run_plain = true;
  opts.run_fault = false;
  opts.run_crash = false;
  opts.mutate_no_pin = true;
  opts.shrink_on_failure = true;
  opts.shrink_attempts = 80;
  const SelfTestReport report = RunSelfTest(opts);
  ASSERT_FALSE(report.ok())
      << "armed mutation was not caught — the harness lost its teeth";
  ASSERT_FALSE(report.failures.empty());

  const SelfTestFailure& f = report.failures.front();
  EXPECT_LT(f.history.ops.size(), f.original_ops) << "shrink removed nothing";
  // Byte-for-byte replay of the minimized history: same failure class.
  auto reparsed = History::Parse(f.history.Serialize());
  ASSERT_TRUE(reparsed.ok());
  const RunResult replayed = RunHistory(*reparsed);
  ASSERT_FALSE(replayed.ok) << "minimized repro no longer fails";
  EXPECT_EQ(replayed.failure_class, f.result.failure_class);
}

// Same drill for the lock-free read path: skip the seqlock recheck (via
// the mutation knob) and a read raced by an invalidate inside its window
// returns a stale mapping — the checker must catch it.
TEST(SelfTest, MutationSmokeCatchesNoSeqlockRetry) {
  SelfTestOptions opts;
  opts.seed = 11;
  opts.ops = 1200;
  opts.schemes.clear();  // middle level only: fastest path to the bug
  // Plain mode: intrusions at the read-preretry hook invalidate the
  // region mid-read; the healthy layer retries and reports NotFound, the
  // mutated one serves the payload of an unmapped region.
  opts.run_plain = true;
  opts.run_fault = false;
  opts.run_crash = false;
  opts.mutate_no_seqlock_retry = true;
  opts.shrink_on_failure = true;
  opts.shrink_attempts = 80;
  const SelfTestReport report = RunSelfTest(opts);
  ASSERT_FALSE(report.ok())
      << "armed mutation was not caught — the harness lost its teeth";
  ASSERT_FALSE(report.failures.empty());

  const SelfTestFailure& f = report.failures.front();
  // Byte-for-byte replay of the minimized history: same failure class.
  auto reparsed = History::Parse(f.history.Serialize());
  ASSERT_TRUE(reparsed.ok());
  const RunResult replayed = RunHistory(*reparsed);
  ASSERT_FALSE(replayed.ok) << "minimized repro no longer fails";
  EXPECT_EQ(replayed.failure_class, f.result.failure_class);
}

// Crafted regression scenario for the publish window: interleaved
// intrusions (invalidate / read / forced GC inside the reserve→write→
// publish window) plus a mid-run power cycle, against the *fixed* engine,
// must stay divergence-free.
TEST(SelfTest, CraftedPublishWindowScenarioIsClean) {
  HistoryConfig config;
  config.level = Level::kMiddle;
  config.seed = 1;
  config.zones = 8;
  config.slots = 12;
  History h;
  h.config = config;
  auto push = [&h](Op op) { h.ops.push_back(op); };
  u64 seq = 0;
  // Fill all slots twice so GC has work.
  for (int round = 0; round < 2; ++round) {
    for (u64 rid = 0; rid < config.slots; ++rid) {
      Op w;
      w.kind = OpKind::kMWrite;
      w.key = rid;
      w.seq = ++seq;
      push(w);
    }
  }
  // Intruders at both hook points: invalidate the region being written,
  // read a bystander, and force a nested collection.
  Op in1;
  in1.kind = OpKind::kIntrude;
  in1.point = fault::HookPoint::kMiddleWritePrePublish;
  in1.after = 1;
  in1.act = OpKind::kMInval;
  in1.key = 0;
  push(in1);
  Op in2 = in1;
  in2.act = OpKind::kMGc;
  in2.after = 2;
  push(in2);
  Op in3 = in1;
  in3.point = fault::HookPoint::kMiddleGcPrePublish;
  in3.act = OpKind::kMInval;
  in3.key = 1;
  in3.after = 1;
  push(in3);
  for (u64 rid = 0; rid < config.slots; ++rid) {
    Op w;
    w.kind = OpKind::kMWrite;
    w.key = rid;
    w.seq = ++seq;
    push(w);
    Op r;
    r.kind = OpKind::kMRead;
    r.key = rid;
    push(r);
  }
  Op restart;
  restart.kind = OpKind::kRestart;
  push(restart);
  for (u64 rid = 0; rid < config.slots; ++rid) {
    Op r;
    r.kind = OpKind::kMRead;
    r.key = rid;
    push(r);
  }
  const RunResult result = RunHistory(h);
  EXPECT_TRUE(result.ok) << result.Describe();
}

}  // namespace
}  // namespace zncache::check
