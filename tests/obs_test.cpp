// Unit tests for the observability layer: metric registry semantics,
// JSON export validity, tracer ring behaviour, and virtual-time-driven
// sampling.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "sim/clock.h"

namespace zncache::obs {
namespace {

// --- JSON helpers ---------------------------------------------------------

TEST(JsonTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonEscape("tab\there"), "tab\\there");
  EXPECT_TRUE(JsonValid("\"" + JsonEscape("ctl\x01mix\n") + "\""));
}

TEST(JsonTest, NumFormatsFiniteAndGuardsNonFinite) {
  EXPECT_TRUE(JsonValid(JsonNum(1.5)));
  EXPECT_TRUE(JsonValid(JsonNum(0.0)));
  EXPECT_EQ(JsonNum(1.0 / 0.0), "0");  // infinities must not leak into JSON
}

TEST(JsonTest, ValidatorAcceptsAndRejects) {
  EXPECT_TRUE(JsonValid("{\"a\":[1,2,{\"b\":null}],\"c\":\"x\"}"));
  EXPECT_TRUE(JsonValid("[]"));
  EXPECT_TRUE(JsonValid("-1.25e3"));
  EXPECT_FALSE(JsonValid("{\"a\":}"));
  EXPECT_FALSE(JsonValid("[1,2,]"));
  EXPECT_FALSE(JsonValid("{'a':1}"));
  EXPECT_FALSE(JsonValid(""));
  EXPECT_FALSE(JsonValid("{\"a\":1} trailing"));
}

// --- Registry -------------------------------------------------------------

TEST(RegistryTest, HandlesAreStableAndSharedByName) {
  Registry r;
  Counter* a = r.GetCounter("zns.zone.resets");
  Counter* b = r.GetCounter("zns.zone.resets");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);
  a->Inc(3);
  EXPECT_EQ(b->value(), 3u);
  // Creating unrelated metrics must not move existing handles.
  for (int i = 0; i < 100; ++i) {
    r.GetCounter("filler." + std::to_string(i));
  }
  EXPECT_EQ(r.GetCounter("zns.zone.resets"), a);
  EXPECT_EQ(a->value(), 3u);
}

TEST(RegistryTest, KindCollisionReturnsNull) {
  Registry r;
  ASSERT_NE(r.GetCounter("cache.gets"), nullptr);
  EXPECT_EQ(r.GetGauge("cache.gets"), nullptr);
  EXPECT_EQ(r.GetHistogram("cache.gets"), nullptr);
  // The original registration is untouched.
  EXPECT_NE(r.GetCounter("cache.gets"), nullptr);
}

TEST(RegistryTest, OrSinkFallsBackOnCollision) {
  Registry r;
  Counter* c = r.GetCounter("dual.name");
  // Same kind: OrSink resolves to the real registry handle.
  EXPECT_EQ(GetCounterOrSink(&r, "dual.name"), c);
  // Kind mismatch: recording must still be safe, via the shared sink.
  Gauge* g = GetGaugeOrSink(&r, "dual.name");
  ASSERT_NE(g, nullptr);
  g->Set(7);  // must not crash, must not corrupt the counter
  EXPECT_EQ(c->value(), 0u);
  Histogram* h = GetHistogramOrSink(&r, "dual.name");
  ASSERT_NE(h, nullptr);
  h->Record(42);
}

TEST(RegistryTest, GaugeProviderFreezesOnClear) {
  Registry r;
  Gauge* g = r.GetGauge("backend.block.host_bytes");
  double source = 10.0;
  g->SetProvider([&source] { return source; });
  EXPECT_DOUBLE_EQ(g->value(), 10.0);
  source = 25.0;
  EXPECT_DOUBLE_EQ(g->value(), 25.0);
  g->ClearProvider();
  source = 99.0;  // no longer observed
  EXPECT_DOUBLE_EQ(g->value(), 25.0);
}

TEST(RegistryTest, GaugeProviderSwapRacesSafelyWithReaders) {
  // Regression: value() used to read provider_ without synchronization, so
  // a concurrent SetProvider/ClearProvider could observe a half-written
  // std::function. Readers must always see either the old provider, the
  // new one, or the stored value — never tear.
  Registry r;
  Gauge* g = r.GetGauge("race.gauge");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 2000; ++i) {
      g->SetProvider([i] { return static_cast<double>(i); });
      g->ClearProvider();
    }
    stop.store(true);
  });
  double last = 0.0;
  while (!stop.load()) {
    const double v = g->value();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 2000.0);
    last = v;
  }
  writer.join();
  (void)last;
}

TEST(RegistryTest, ToJsonIsValidAndCarriesValues) {
  Registry r;
  r.GetCounter("cache.gets")->Inc(17);
  r.GetGauge("zns.open_zones")->Set(3.5);
  Histogram* h = r.GetHistogram("cache.lookup_latency_ns");
  h->Record(1000);
  h->Record(2000);
  const std::string json = r.ToJson();
  EXPECT_TRUE(JsonValid(json)) << json;
  EXPECT_NE(json.find("\"cache.gets\":17"), std::string::npos) << json;
  EXPECT_NE(json.find("zns.open_zones"), std::string::npos);
  EXPECT_NE(json.find("cache.lookup_latency_ns"), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
}

TEST(RegistryTest, EmptyRegistryExportsValidJson) {
  Registry r;
  EXPECT_TRUE(JsonValid(r.ToJson()));
}

TEST(RegistryTest, ResetZeroesButKeepsHandles) {
  Registry r;
  Counter* c = r.GetCounter("x");
  Gauge* g = r.GetGauge("y");
  Histogram* h = r.GetHistogram("z");
  c->Inc(5);
  g->Set(5);
  h->Record(5);
  r.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(r.GetCounter("x"), c);
}

TEST(HistogramTest, ToJsonRoundTrips) {
  Histogram h;
  for (u64 v : {100u, 200u, 300u, 4000u}) h.Record(v);
  const std::string json = h.ToJson();
  EXPECT_TRUE(JsonValid(json)) << json;
  EXPECT_NE(json.find("\"count\":4"), std::string::npos);
  EXPECT_NE(json.find("\"min\":100"), std::string::npos);
  EXPECT_NE(json.find("\"max\":4000"), std::string::npos);
  // Empty histograms must not report the ~0ULL sentinel as min.
  Histogram empty;
  const std::string ejson = empty.ToJson();
  EXPECT_TRUE(JsonValid(ejson)) << ejson;
  EXPECT_NE(ejson.find("\"min\":0"), std::string::npos);
}

// --- Tracer ---------------------------------------------------------------

TEST(TracerTest, RecordsInVirtualTimeOrder) {
  Tracer t(64);
  sim::VirtualClock clock;
  t.Record(EventKind::kZoneOpen, clock.Now(), 1);
  clock.Advance(10 * sim::kMicrosecond);
  t.Record(EventKind::kGcBegin, clock.Now(), 4, 0, 0.25);
  clock.Advance(5 * sim::kMicrosecond);
  t.Record(EventKind::kGcEnd, clock.Now(), 4, 12);
  clock.Advance(1);
  t.Record(EventKind::kZoneReset, clock.Now(), 4);

  auto events = t.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, EventKind::kZoneOpen);
  EXPECT_EQ(events[1].kind, EventKind::kGcBegin);
  EXPECT_EQ(events[2].kind, EventKind::kGcEnd);
  EXPECT_EQ(events[3].kind, EventKind::kZoneReset);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts, events[i - 1].ts);
  }
  EXPECT_EQ(events[1].a0, 4u);
  EXPECT_DOUBLE_EQ(events[1].d0, 0.25);
  EXPECT_EQ(events[2].a1, 12u);
}

TEST(TracerTest, RingWrapsKeepingNewestEvents) {
  Tracer t(8);
  for (u64 i = 0; i < 20; ++i) {
    t.Record(EventKind::kRegionFlush, /*ts=*/i * 100, /*a0=*/i);
  }
  EXPECT_EQ(t.recorded(), 20u);
  EXPECT_EQ(t.dropped(), 12u);
  auto events = t.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest retained first: events 12..19.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a0, 12 + i) << "slot " << i;
    EXPECT_EQ(events[i].ts, (12 + i) * 100);
  }
}

TEST(TracerTest, ClearDropsEventsButKeepsLanes) {
  Tracer t(8);
  const u32 pid = t.BeginProcess("run-a");
  t.Record(EventKind::kZoneReset, 10, 1);
  t.Clear();
  EXPECT_EQ(t.Snapshot().size(), 0u);
  t.Record(EventKind::kZoneReset, 20, 2);
  auto events = t.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].pid, pid);
}

TEST(TracerTest, ChromeJsonIsValidAndPairsDurations) {
  Tracer t(128);
  t.BeginProcess("scheme-under-test");
  t.Record(EventKind::kGcBegin, 1000, 7, 0, 0.5);
  t.Record(EventKind::kZoneReset, 1500, 7);
  t.Record(EventKind::kGcEnd, 2000, 7, 3);
  t.Record(EventKind::kWatermarkLow, 2500, 1, 2);
  const std::string json = t.ToChromeJson();
  EXPECT_TRUE(JsonValid(json)) << json;
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("scheme-under-test"), std::string::npos);
  EXPECT_NE(json.find("victim_zone"), std::string::npos);
}

TEST(TracerTest, EmptyTraceIsValidChromeJson) {
  Tracer t(8);
  EXPECT_TRUE(JsonValid(t.ToChromeJson()));
}

TEST(TracerTest, ChromeJsonReportsRingOverflowInStats) {
  Tracer t(4);
  // No overflow yet: stats present, no drop reason.
  t.Record(EventKind::kZoneReset, 10, 1);
  std::string json = t.ToChromeJson();
  EXPECT_TRUE(JsonValid(json)) << json;
  EXPECT_NE(json.find("\"zncacheStats\""), std::string::npos);
  EXPECT_NE(json.find("\"recorded\":1"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
  EXPECT_NE(json.find("\"capacity\":4"), std::string::npos);
  EXPECT_EQ(json.find("drop_reason"), std::string::npos);
  // Wrap the ring: the export must say the trace is incomplete and why,
  // so a reader never mistakes a truncated trace for the whole run.
  for (u64 i = 0; i < 10; ++i) t.Record(EventKind::kRegionFlush, 100 + i, i);
  json = t.ToChromeJson();
  EXPECT_TRUE(JsonValid(json)) << json;
  EXPECT_NE(json.find("\"recorded\":11"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":7"), std::string::npos);
  EXPECT_NE(json.find("\"drop_reason\":\"ring_overflow\""),
            std::string::npos);
}

TEST(TracerTest, ChromeJsonSplicesExtraEventFragments) {
  Tracer t(8);
  const u32 pid = t.BeginProcess("run");
  t.Record(EventKind::kZoneOpen, 10, 1);
  const std::string extra =
      "{\"name\":\"slow.get\",\"ph\":\"X\",\"ts\":0.100,\"dur\":2.000,"
      "\"pid\":" +
      std::to_string(pid) + ",\"tid\":7}";
  const std::string json = t.ToChromeJson(extra);
  EXPECT_TRUE(JsonValid(json)) << json;
  EXPECT_NE(json.find("\"slow.get\""), std::string::npos);
  // The no-argument overload stays byte-compatible.
  EXPECT_EQ(json.find("slow.get"), json.rfind("slow.get"));
  EXPECT_EQ(t.ToChromeJson().find("slow.get"), std::string::npos);
}

TEST(TracerTest, EventNamesCoverEveryKind) {
  for (u8 k = 0; k <= static_cast<u8>(EventKind::kFtlGcEnd); ++k) {
    const char* name = EventName(static_cast<EventKind>(k));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
  }
}

// --- Sampler --------------------------------------------------------------

TEST(SamplerTest, SamplesOnIntervalBoundaries) {
  Sampler s(1000);
  u64 ticks = 0;
  s.AddProbe("ticks", [&ticks] { return static_cast<double>(ticks); });
  // now=0 crosses the first boundary (next_ starts at 0).
  s.MaybeSample(0);
  EXPECT_EQ(s.rows(), 1u);
  ticks = 1;
  s.MaybeSample(500);  // not due
  EXPECT_EQ(s.rows(), 1u);
  s.MaybeSample(1200);  // crossed 1000
  EXPECT_EQ(s.rows(), 2u);
  s.MaybeSample(1900);  // next boundary is 2000
  EXPECT_EQ(s.rows(), 2u);
  s.SampleNow(1900);  // forced
  EXPECT_EQ(s.rows(), 3u);
}

TEST(SamplerTest, RefusesNewProbesAfterFirstSample) {
  Sampler s(100);
  s.AddProbe("a", [] { return 1.0; });
  s.SampleNow(50);
  s.AddProbe("b", [] { return 2.0; });  // ignored: columns are fixed
  s.SampleNow(150);
  const std::string json = s.ToJson();
  EXPECT_TRUE(JsonValid(json)) << json;
  EXPECT_NE(json.find("\"a\""), std::string::npos);
  EXPECT_EQ(json.find("\"b\""), std::string::npos);
}

TEST(SamplerTest, ExportsColumnarJson) {
  Sampler s(10);
  double v = 1.5;
  s.AddProbe("gauge", [&v] { return v; });
  s.SampleNow(0);
  v = 2.5;
  s.SampleNow(10);
  const std::string json = s.ToJson();
  EXPECT_TRUE(JsonValid(json)) << json;
  EXPECT_NE(json.find("\"interval_ns\":10"), std::string::npos);
  EXPECT_NE(json.find("\"t_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"gauge\""), std::string::npos);
  EXPECT_NE(json.find("2.5"), std::string::npos);
}

TEST(SamplerTest, EmptySamplerExportsValidJson) {
  Sampler s(100);
  EXPECT_TRUE(JsonValid(s.ToJson()));
}

}  // namespace
}  // namespace zncache::obs
