// Unit tests for per-op latency attribution (obs/optimeline.h): timeline
// charging and sticky-phase redirection, RAII scope behaviour (including
// exception unwind), windowed percentile aggregation, flight-recorder
// determinism, and the OpAttribution sink's merge/export paths.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/optimeline.h"

namespace zncache::obs {
namespace {

constexpr SimNanos kSec = 1'000'000'000;

// --- OpTimeline charging --------------------------------------------------

TEST(OpTimelineTest, ChargeAccumulatesAndSkipsZero) {
  OpTimeline tl;
  tl.Charge(Phase::kDevService, 100);
  tl.Charge(Phase::kDevService, 50);
  tl.Charge(Phase::kIndexLookup, 0);  // no-op
  EXPECT_EQ(tl.phase_ns[static_cast<size_t>(Phase::kDevService)], 150u);
  EXPECT_EQ(tl.phase_ns[static_cast<size_t>(Phase::kIndexLookup)], 0u);
  EXPECT_EQ(tl.total(), 150u);
}

TEST(OpTimelineTest, StickyRedirectsChargesToDeepestScope) {
  OpTimeline tl;
  tl.PushSticky(Phase::kEviction);
  tl.Charge(Phase::kDevService, 100);  // lands on kEviction
  tl.PushSticky(Phase::kGcInterference);
  tl.Charge(Phase::kDevService, 30);  // lands on kGcInterference
  tl.PopSticky();
  tl.Charge(Phase::kIndexLookup, 7);  // back to kEviction
  tl.PopSticky();
  tl.Charge(Phase::kDevService, 5);  // no sticky left
  EXPECT_EQ(tl.phase_ns[static_cast<size_t>(Phase::kEviction)], 107u);
  EXPECT_EQ(tl.phase_ns[static_cast<size_t>(Phase::kGcInterference)], 30u);
  EXPECT_EQ(tl.phase_ns[static_cast<size_t>(Phase::kDevService)], 5u);
}

TEST(OpTimelineTest, StickyOverflowKeepsRedirectingAndStaysBalanced) {
  OpTimeline tl;
  for (size_t i = 0; i < OpTimeline::kMaxSticky; ++i) {
    tl.PushSticky(Phase::kEviction);
  }
  // Depth beyond the stored stack: charges keep going to the deepest
  // *stored* phase, and pops unwind cleanly.
  tl.PushSticky(Phase::kGcInterference);  // not stored (overflow)
  tl.Charge(Phase::kDevService, 40);
  EXPECT_EQ(tl.phase_ns[static_cast<size_t>(Phase::kEviction)], 40u);
  for (size_t i = 0; i < OpTimeline::kMaxSticky + 1; ++i) tl.PopSticky();
  EXPECT_EQ(tl.sticky_depth, 0u);
  tl.Charge(Phase::kDevService, 1);
  EXPECT_EQ(tl.phase_ns[static_cast<size_t>(Phase::kDevService)], 1u);
}

TEST(OpTimelineTest, ChargeDirectBypassesSticky) {
  OpTimeline tl;
  tl.PushSticky(Phase::kGcInterference);
  tl.ChargeDirect(Phase::kZoneLockWait, 99);
  tl.PopSticky();
  EXPECT_EQ(tl.phase_ns[static_cast<size_t>(Phase::kZoneLockWait)], 99u);
  EXPECT_EQ(tl.phase_ns[static_cast<size_t>(Phase::kGcInterference)], 0u);
}

// --- Free-function charge sites -------------------------------------------

TEST(ChargeSiteTest, AllChargesNoOpWithoutActiveTimeline) {
  ASSERT_EQ(ActiveOpTimeline(), nullptr);
  // Must not crash or touch anything.
  ChargePhase(Phase::kIndexLookup, 10);
  ChargeLockWait(Phase::kShardLockWait, 10);
  ChargeDeviceServe(5, 10);
  NoteZoneMgmtOp();
  NoteOpRetry();
  { PhaseScope scope(Phase::kEviction); }
  EXPECT_EQ(ActiveOpTimeline(), nullptr);
}

TEST(ChargeSiteTest, DeviceServeChargesBothPhasesAndCountsOps) {
  OpAttribution sink;
  {
    OpScope op(&sink, OpType::kSet, /*now_ts=*/0);
    ChargeDeviceServe(/*queue_ns=*/20, /*service_ns=*/80);
    ChargeDeviceServe(0, 40);  // uncontended: no queue time
    NoteZoneMgmtOp();
    NoteOpRetry();
  }
  const std::vector<SlowOp> worst = sink.WorstOps(OpType::kSet);
  ASSERT_EQ(worst.size(), 1u);
  EXPECT_EQ(worst[0].phase_ns[static_cast<size_t>(Phase::kDevQueueWait)],
            20u);
  EXPECT_EQ(worst[0].phase_ns[static_cast<size_t>(Phase::kDevService)],
            120u);
  EXPECT_EQ(worst[0].dev_ops, 2u);
  EXPECT_EQ(worst[0].zone_mgmt_ops, 1u);
  EXPECT_EQ(worst[0].retries, 1u);
}

// --- OpScope --------------------------------------------------------------

TEST(OpScopeTest, InstallsAndClearsThreadLocal) {
  OpAttribution sink;
  EXPECT_EQ(ActiveOpTimeline(), nullptr);
  {
    OpScope op(&sink, OpType::kGet, 5);
    ASSERT_NE(ActiveOpTimeline(), nullptr);
    EXPECT_EQ(ActiveOpTimeline(), op.timeline());
    EXPECT_EQ(op.timeline()->start_ts, 5u);
  }
  EXPECT_EQ(ActiveOpTimeline(), nullptr);
  EXPECT_EQ(sink.op_count(OpType::kGet), 1u);
}

TEST(OpScopeTest, NullSinkIsInert) {
  {
    OpScope op(nullptr, OpType::kGet, 0);
    EXPECT_EQ(op.timeline(), nullptr);
    EXPECT_EQ(ActiveOpTimeline(), nullptr);
  }
}

TEST(OpScopeTest, NestedScopeIsInertAndChargesOuterOp) {
  OpAttribution sink;
  {
    OpScope outer(&sink, OpType::kGet, 0);
    {
      // E.g. a reinsertion Set issued while serving the outer Get.
      OpScope inner(&sink, OpType::kSet, 10);
      EXPECT_EQ(inner.timeline(), nullptr);
      EXPECT_EQ(ActiveOpTimeline(), outer.timeline());
      ChargePhase(Phase::kDevService, 33);
    }
    // Inner destruction must not clear the outer installation.
    ASSERT_EQ(ActiveOpTimeline(), outer.timeline());
  }
  EXPECT_EQ(sink.op_count(OpType::kGet), 1u);
  EXPECT_EQ(sink.op_count(OpType::kSet), 0u);
  const std::vector<SlowOp> worst = sink.WorstOps(OpType::kGet);
  ASSERT_EQ(worst.size(), 1u);
  EXPECT_EQ(worst[0].phase_ns[static_cast<size_t>(Phase::kDevService)], 33u);
}

TEST(OpScopeTest, FinishStampsSpanElseSpanDefaultsToTotal) {
  OpAttribution sink;
  {
    OpScope op(&sink, OpType::kSet, 100);
    ChargePhase(Phase::kDevService, 40);
    op.Finish(175);
  }
  {
    OpScope op(&sink, OpType::kSet, 0);
    ChargePhase(Phase::kDevService, 60);
    // No Finish: span falls back to the attributed total.
  }
  const std::vector<SlowOp> worst = sink.WorstOps(OpType::kSet);
  ASSERT_EQ(worst.size(), 2u);
  // Worst() sorts by total: 60 first, then 40.
  EXPECT_EQ(worst[0].span_ns, 60u);
  EXPECT_EQ(worst[1].span_ns, 75u);
}

TEST(OpScopeTest, RecordsAndUninstallsOnExceptionUnwind) {
  OpAttribution sink;
  try {
    OpScope op(&sink, OpType::kGet, 0);
    PhaseScope evict(Phase::kEviction);
    ChargePhase(Phase::kDevService, 25);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(ActiveOpTimeline(), nullptr);
  EXPECT_EQ(sink.op_count(OpType::kGet), 1u);
  const std::vector<SlowOp> worst = sink.WorstOps(OpType::kGet);
  ASSERT_EQ(worst.size(), 1u);
  EXPECT_EQ(worst[0].phase_ns[static_cast<size_t>(Phase::kEviction)], 25u);
}

// --- WindowedPercentiles --------------------------------------------------

TEST(WindowedPercentilesTest, SplitsRecordsByWindowIndex) {
  WindowedPercentiles w(/*window_ns=*/kSec, /*max_windows=*/8);
  w.Record(0, 10);
  w.Record(kSec - 1, 20);
  w.Record(kSec, 30);       // second window
  w.Record(3 * kSec, 40);   // fourth window; index 2 stays empty (gap)
  EXPECT_EQ(w.count(), 4u);
  const std::vector<u64> idx = w.indices();
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[1], 1u);
  EXPECT_EQ(idx[2], 3u);
  ASSERT_NE(w.WindowAt(0), nullptr);
  EXPECT_EQ(w.WindowAt(0)->count(), 2u);
  EXPECT_EQ(w.WindowAt(2), nullptr);
  EXPECT_EQ(w.cumulative().count(), 4u);
}

TEST(WindowedPercentilesTest, PowerOfTwoWindowIndexesLikeDivision) {
  // Power-of-two windows take the shift fast path; indexing must be
  // bit-identical to the division the non-pow2 path uses.
  constexpr SimNanos kWin = SimNanos{1} << 20;
  WindowedPercentiles w(kWin, /*max_windows=*/8);
  w.Record(0, 1);
  w.Record(kWin - 1, 2);
  w.Record(kWin, 3);
  w.Record(5 * kWin + 123, 4);
  const std::vector<u64> idx = w.indices();
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[1], 1u);
  EXPECT_EQ(idx[2], 5u);
  ASSERT_NE(w.WindowAt(0), nullptr);
  EXPECT_EQ(w.WindowAt(0)->count(), 2u);
}

TEST(WindowedPercentilesTest, EvictsOldestBeyondMaxWindows) {
  WindowedPercentiles w(kSec, /*max_windows=*/2);
  w.Record(0, 1);
  w.Record(kSec, 2);
  w.Record(2 * kSec, 3);
  EXPECT_EQ(w.window_count(), 2u);
  EXPECT_EQ(w.WindowAt(0), nullptr);  // evicted
  ASSERT_NE(w.WindowAt(2), nullptr);
  // The cumulative histogram still remembers everything.
  EXPECT_EQ(w.count(), 3u);
}

TEST(WindowedPercentilesTest, LateArrivalFoldsIntoOldestRetainedWindow) {
  WindowedPercentiles w(kSec, 4);
  w.Record(2 * kSec, 5);
  w.Record(0, 7);  // late: window 0 < oldest retained (2) -> folds there
  ASSERT_EQ(w.indices().size(), 1u);
  EXPECT_EQ(w.WindowAt(2)->count(), 2u);
}

TEST(WindowedPercentilesTest, MergeCombinesMatchingIndices) {
  WindowedPercentiles a(kSec, 8);
  WindowedPercentiles b(kSec, 8);
  a.Record(0, 10);
  a.Record(2 * kSec, 30);
  b.Record(0, 12);
  b.Record(kSec, 20);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 4u);
  const std::vector<u64> idx = a.indices();
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(a.WindowAt(0)->count(), 2u);
  EXPECT_EQ(a.WindowAt(1)->count(), 1u);
  EXPECT_EQ(a.WindowAt(2)->count(), 1u);
}

TEST(WindowedPercentilesTest, PercentilesComeFromRecordedValues) {
  WindowedPercentiles w(kSec, 8);
  for (u64 v = 1; v <= 100; ++v) w.Record(0, v * 1000);
  EXPECT_GE(w.cumulative().P50(), 45'000u);
  EXPECT_LE(w.cumulative().P50(), 60'000u);
  EXPECT_GE(w.cumulative().P99(), 95'000u);
  EXPECT_TRUE(JsonValid(w.ToJson()));
}

// --- FlightRecorder -------------------------------------------------------

SlowOp MakeOp(u64 total, u64 seq) {
  SlowOp op;
  op.total_ns = total;
  op.seq = seq;
  return op;
}

TEST(FlightRecorderTest, KeepsWorstKDeterministically) {
  FlightRecorder fr(/*capacity=*/3);
  fr.Offer(MakeOp(10, 1));
  fr.Offer(MakeOp(30, 2));
  fr.Offer(MakeOp(20, 3));
  fr.Offer(MakeOp(40, 4));  // displaces total=10
  fr.Offer(MakeOp(5, 5));   // too fast; dropped
  const std::vector<SlowOp> worst = fr.Worst();
  ASSERT_EQ(worst.size(), 3u);
  EXPECT_EQ(worst[0].total_ns, 40u);
  EXPECT_EQ(worst[1].total_ns, 30u);
  EXPECT_EQ(worst[2].total_ns, 20u);
}

TEST(FlightRecorderTest, EqualMinimumDisplacesEarliestAdmitted) {
  FlightRecorder fr(2);
  fr.Offer(MakeOp(10, 1));
  fr.Offer(MakeOp(10, 2));
  fr.Offer(MakeOp(15, 3));  // displaces seq=1, the earliest equal minimum
  const std::vector<SlowOp> worst = fr.Worst();
  ASSERT_EQ(worst.size(), 2u);
  EXPECT_EQ(worst[0].total_ns, 15u);
  EXPECT_EQ(worst[1].seq, 2u);
}

TEST(FlightRecorderTest, NewOpEqualToMinimumIsNotAdmitted) {
  FlightRecorder fr(2);
  fr.Offer(MakeOp(10, 1));
  fr.Offer(MakeOp(20, 2));
  fr.Offer(MakeOp(10, 3));  // ties the minimum: not strictly slower
  const std::vector<SlowOp> worst = fr.Worst();
  ASSERT_EQ(worst.size(), 2u);
  EXPECT_EQ(worst[1].seq, 1u);
}

TEST(FlightRecorderTest, WouldAdmitMatchesOfferOutcome) {
  FlightRecorder fr(2);
  EXPECT_TRUE(fr.WouldAdmit(0));  // below capacity: everything admits
  fr.Offer(MakeOp(10, 1));
  fr.Offer(MakeOp(20, 2));
  EXPECT_FALSE(fr.WouldAdmit(10));  // ties the minimum: rejected
  EXPECT_TRUE(fr.WouldAdmit(11));
  fr.Offer(MakeOp(30, 3));  // displaces 10; cached minimum moves to 20
  EXPECT_FALSE(fr.WouldAdmit(20));
  EXPECT_TRUE(fr.WouldAdmit(21));
  fr.Reset();
  EXPECT_TRUE(fr.WouldAdmit(0));

  FlightRecorder empty(0);
  EXPECT_FALSE(empty.WouldAdmit(100));  // zero capacity never admits
}

TEST(FlightRecorderTest, TiesInWorstOrderByAdmission) {
  FlightRecorder fr(3);
  fr.Offer(MakeOp(20, 7));
  fr.Offer(MakeOp(20, 3));
  fr.Offer(MakeOp(20, 5));
  const std::vector<SlowOp> worst = fr.Worst();
  ASSERT_EQ(worst.size(), 3u);
  EXPECT_EQ(worst[0].seq, 3u);
  EXPECT_EQ(worst[1].seq, 5u);
  EXPECT_EQ(worst[2].seq, 7u);
}

// --- OpAttribution --------------------------------------------------------

OpTimeline MakeTimeline(OpType type, SimNanos ts, SimNanos service_ns) {
  OpTimeline tl;
  tl.type = type;
  tl.start_ts = ts;
  tl.Charge(Phase::kDevService, service_ns);
  tl.span_ns = service_ns;
  return tl;
}

TEST(OpAttributionTest, RecordsPerTypeAndExportsValidJson) {
  OpAttribution attr;
  attr.Record(MakeTimeline(OpType::kGet, 0, 100));
  attr.Record(MakeTimeline(OpType::kGet, 10, 300));
  attr.Record(MakeTimeline(OpType::kSet, 20, 5000));
  EXPECT_EQ(attr.op_count(OpType::kGet), 2u);
  EXPECT_EQ(attr.op_count(OpType::kSet), 1u);
  EXPECT_EQ(attr.op_count(OpType::kDelete), 0u);
  EXPECT_EQ(attr.MergedWindows(OpType::kGet).count(), 2u);
  EXPECT_EQ(attr.MergedSpans(OpType::kSet).count(), 1u);
  const std::vector<u64> phases = attr.MergedPhaseTotals(OpType::kGet);
  ASSERT_EQ(phases.size(), kPhaseCount);
  EXPECT_EQ(phases[static_cast<size_t>(Phase::kDevService)], 400u);
  const std::string json = attr.ToJson();
  EXPECT_TRUE(JsonValid(json)) << json;
  EXPECT_NE(json.find("\"slow_ops\""), std::string::npos);
}

TEST(OpAttributionTest, WindowsDisabledSkipsPercentilesOnly) {
  OpAttributionConfig config;
  config.windows_enabled = false;
  OpAttribution attr(config);
  attr.Record(MakeTimeline(OpType::kGet, 0, 100));
  EXPECT_EQ(attr.op_count(OpType::kGet), 1u);
  EXPECT_EQ(attr.MergedWindows(OpType::kGet).count(), 0u);
  // Flight recorder and phase totals still run.
  EXPECT_EQ(attr.WorstOps(OpType::kGet).size(), 1u);
  EXPECT_EQ(attr.MergedPhaseTotals(
                OpType::kGet)[static_cast<size_t>(Phase::kDevService)],
            100u);
  EXPECT_TRUE(JsonValid(attr.ToJson()));
}

TEST(OpAttributionTest, WorstOpsMergeAcrossRecordingThreads) {
  // Each thread gets its own stripe; WorstOps must see all of them and
  // still cap at flight_k, slowest first.
  OpAttributionConfig config;
  config.flight_k = 4;
  OpAttribution attr(config);
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&attr, t] {
      for (int i = 0; i < 8; ++i) {
        attr.Record(MakeTimeline(OpType::kGet, 0,
                                 1000 * (t * 8 + i + 1)));
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(attr.op_count(OpType::kGet), 32u);
  const std::vector<SlowOp> worst = attr.WorstOps(OpType::kGet);
  ASSERT_EQ(worst.size(), 4u);
  EXPECT_EQ(worst[0].total_ns, 32'000u);
  EXPECT_EQ(worst[3].total_ns, 29'000u);
  EXPECT_EQ(attr.MergedWindows(OpType::kGet).count(), 32u);
}

TEST(OpAttributionTest, TailSpansJsonEmptyWithoutOpsElseFragments) {
  OpAttribution attr;
  EXPECT_TRUE(attr.TailSpansJson(3).empty());
  OpTimeline tl = MakeTimeline(OpType::kSet, 100, 2000);
  tl.Charge(Phase::kIndexLookup, 50);
  attr.Record(tl);
  const std::string spans = attr.TailSpansJson(3);
  ASSERT_FALSE(spans.empty());
  // Fragments must splice into an event array as-is.
  EXPECT_TRUE(JsonValid("[" + spans + "]")) << spans;
  EXPECT_NE(spans.find("\"slow.set\""), std::string::npos);
  EXPECT_NE(spans.find("\"phase.index_lookup\""), std::string::npos);
  EXPECT_NE(spans.find("\"pid\":3"), std::string::npos);
}

TEST(OpAttributionTest, ResetClearsEverything) {
  OpAttribution attr;
  attr.Record(MakeTimeline(OpType::kGet, 0, 100));
  attr.Reset();
  EXPECT_EQ(attr.op_count(OpType::kGet), 0u);
  EXPECT_TRUE(attr.WorstOps(OpType::kGet).empty());
  EXPECT_TRUE(attr.TailSpansJson(1).empty());
  EXPECT_EQ(attr.MergedWindows(OpType::kGet).count(), 0u);
}

}  // namespace
}  // namespace zncache::obs
