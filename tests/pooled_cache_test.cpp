#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "backends/middle_region_device.h"
#include "cache/pooled_cache.h"
#include "common/random.h"

namespace zncache::cache {
namespace {

class PooledCacheTest : public ::testing::Test {
 protected:
  void Make(u32 pools) {
    clock_ = std::make_unique<sim::VirtualClock>();
    backends::MiddleRegionDeviceConfig dc;
    dc.region_count = 32;
    dc.zns.zone_count = 14;
    dc.zns.zone_size = 256 * kKiB;
    dc.zns.zone_capacity = 256 * kKiB;
    dc.zns.max_open_zones = 6;
    dc.zns.max_active_zones = 8;
    dc.middle.region_size = 64 * kKiB;
    dc.middle.open_zones = 2;
    dc.middle.min_empty_zones = 2;
    device_ =
        std::make_unique<backends::MiddleRegionDevice>(dc, clock_.get());
    ASSERT_TRUE(device_->Init().ok());
    PooledCacheConfig cfg;
    cfg.pools = pools;
    cfg.engine.store_values = true;
    pooled_ = std::make_unique<PooledCache>(cfg, device_.get(), clock_.get());
  }

  void SetUp() override { Make(4); }

  std::unique_ptr<sim::VirtualClock> clock_;
  std::unique_ptr<backends::MiddleRegionDevice> device_;
  std::unique_ptr<PooledCache> pooled_;
};

TEST_F(PooledCacheTest, SlicesPartitionTheDevice) {
  EXPECT_EQ(pooled_->pool_count(), 4u);
  u64 total = 0;
  for (u32 p = 0; p < 4; ++p) {
    total += pooled_->pool(p).capacity_bytes();
  }
  EXPECT_EQ(total, 32 * 64 * kKiB);
}

TEST_F(PooledCacheTest, RoutingIsStable) {
  for (int i = 0; i < 100; ++i) {
    const std::string key = "k" + std::to_string(i);
    EXPECT_EQ(pooled_->PoolIndexFor(key), pooled_->PoolIndexFor(key));
  }
}

TEST_F(PooledCacheTest, RoutingSpreadsKeys) {
  std::set<u32> used;
  for (int i = 0; i < 200; ++i) {
    used.insert(pooled_->PoolIndexFor("key-" + std::to_string(i)));
  }
  EXPECT_EQ(used.size(), 4u);
}

TEST_F(PooledCacheTest, SetGetDeleteRoundTrip) {
  ASSERT_TRUE(pooled_->Set("k1", std::string(2000, 'a')).ok());
  std::string v;
  auto g = pooled_->Get("k1", &v);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->hit);
  EXPECT_EQ(v.size(), 2000u);

  ASSERT_TRUE(pooled_->Delete("k1").ok());
  EXPECT_FALSE(pooled_->Get("k1")->hit);
}

TEST_F(PooledCacheTest, KeyLandsInExactlyOnePool) {
  ASSERT_TRUE(pooled_->Set("solo", "value").ok());
  int pools_holding = 0;
  for (u32 p = 0; p < 4; ++p) {
    auto g = pooled_->pool(p).Get("solo");
    if (g.ok() && g->hit) pools_holding++;
  }
  EXPECT_EQ(pools_holding, 1);
}

TEST_F(PooledCacheTest, PoolIsolationUnderChurn) {
  // Flood keys that route to one pool; a key in a different pool survives.
  const std::string victim_key = "stable";
  const u32 victim_pool = pooled_->PoolIndexFor(victim_key);
  ASSERT_TRUE(pooled_->Set(victim_key, std::string(1000, 's')).ok());

  int flooded = 0;
  for (int i = 0; flooded < 400 && i < 100'000; ++i) {
    const std::string key = "flood-" + std::to_string(i);
    if (pooled_->PoolIndexFor(key) == victim_pool) continue;
    ASSERT_TRUE(pooled_->Set(key, std::string(30 * kKiB, 'f')).ok());
    flooded++;
  }
  // Other pools churned hard; the victim's pool never evicted.
  EXPECT_TRUE(pooled_->Get(victim_key)->hit);
}

TEST_F(PooledCacheTest, TotalStatsAggregate) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(pooled_->Set("k" + std::to_string(i), "v").ok());
  }
  for (int i = 0; i < 50; ++i) {
    (void)pooled_->Get("k" + std::to_string(i));
  }
  const CacheStats total = pooled_->TotalStats();
  EXPECT_EQ(total.sets, 50u);
  EXPECT_EQ(total.gets, 50u);
  EXPECT_EQ(total.hits, 50u);
}

TEST_F(PooledCacheTest, SinglePoolDegeneratesToOneEngine) {
  Make(1);
  EXPECT_EQ(pooled_->pool_count(), 1u);
  ASSERT_TRUE(pooled_->Set("k", "v").ok());
  EXPECT_TRUE(pooled_->Get("k")->hit);
}

TEST_F(PooledCacheTest, RandomWorkloadConsistency) {
  Rng rng(61);
  std::map<std::string, char> truth;
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "k" + std::to_string(rng.Uniform(150));
    if (rng.Chance(0.25)) {
      ASSERT_TRUE(pooled_->Delete(key).ok());
      truth.erase(key);
    } else {
      const char fill = static_cast<char>('a' + i % 26);
      ASSERT_TRUE(pooled_->Set(key, std::string(2 * kKiB, fill)).ok());
      truth[key] = fill;
    }
  }
  std::string v;
  for (const auto& [key, fill] : truth) {
    auto g = pooled_->Get(key, &v);
    ASSERT_TRUE(g.ok());
    if (g->hit) {
      EXPECT_EQ(v[0], fill) << key;
    }
  }
}

}  // namespace
}  // namespace zncache::cache
