// Property-based suites (parameterized sweeps): each suite drives a module
// with randomized operations across a grid of configurations and checks
// invariants that must hold in every configuration.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <tuple>

#include "blockssd/block_ssd.h"
#include "check/history.h"
#include "check/interpreter.h"
#include "common/histogram.h"
#include "common/random.h"
#include "kv/lsm_store.h"
#include "middle/zone_translation_layer.h"
#include "workload/scenario.h"
#include "zns/zns_device.h"

namespace zncache {
namespace {

// ---------------------------------------------------------------- ZNS ----

// (zone_size_kib, capacity_kib, store_data)
using ZnsParam = std::tuple<u64, u64, bool>;

class ZnsProperty : public ::testing::TestWithParam<ZnsParam> {};

TEST_P(ZnsProperty, WritePointerMonotoneUntilReset) {
  const auto [size_kib, cap_kib, store] = GetParam();
  zns::ZnsConfig c;
  c.zone_count = 6;
  c.zone_size = size_kib * kKiB;
  c.zone_capacity = cap_kib * kKiB;
  c.store_data = store;
  c.max_open_zones = 6;
  c.max_active_zones = 6;
  sim::VirtualClock clock;
  zns::ZnsDevice dev(c, &clock);

  Rng rng(101);
  std::vector<u64> wp(c.zone_count, 0);
  for (int i = 0; i < 2000; ++i) {
    const u64 z = rng.Uniform(c.zone_count);
    if (rng.Chance(0.1)) {
      ASSERT_TRUE(dev.Reset(z).ok());
      wp[z] = 0;
      continue;
    }
    const u64 remaining = dev.GetZoneInfo(z).RemainingCapacity();
    if (remaining == 0) continue;
    const u64 n = 1 + rng.Uniform(std::min<u64>(remaining, 8 * kKiB));
    std::vector<std::byte> data(n, std::byte(static_cast<u8>(i)));
    auto w = dev.Write(z, wp[z], data);
    ASSERT_TRUE(w.ok()) << w.status().ToString();
    wp[z] += n;
    // The write pointer never moves backward and never passes capacity.
    ASSERT_EQ(dev.GetZoneInfo(z).write_pointer, wp[z]);
    ASSERT_LE(wp[z], c.zone_capacity);
  }
  // Device-level WA is identically 1 for ZNS.
  EXPECT_DOUBLE_EQ(dev.stats().WriteAmplification(), 1.0);
}

TEST_P(ZnsProperty, ReadsNeverCrossWritePointer) {
  const auto [size_kib, cap_kib, store] = GetParam();
  zns::ZnsConfig c;
  c.zone_count = 4;
  c.zone_size = size_kib * kKiB;
  c.zone_capacity = cap_kib * kKiB;
  c.store_data = store;
  sim::VirtualClock clock;
  zns::ZnsDevice dev(c, &clock);
  std::vector<std::byte> buf(1024);
  ASSERT_TRUE(dev.Write(0, 0, std::span<const std::byte>(buf)).ok());
  // Every read fully below wp succeeds; any read crossing it fails.
  std::vector<std::byte> out(512);
  EXPECT_TRUE(dev.Read(0, 0, out).ok());
  EXPECT_TRUE(dev.Read(0, 512, out).ok());
  EXPECT_FALSE(dev.Read(0, 513, out).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ZnsProperty,
    ::testing::Values(ZnsParam{64, 64, true}, ZnsParam{64, 48, true},
                      ZnsParam{256, 256, true}, ZnsParam{128, 96, false}),
    [](const ::testing::TestParamInfo<ZnsParam>& tpinfo) {
      return "size" + std::to_string(std::get<0>(tpinfo.param)) + "cap" +
             std::to_string(std::get<1>(tpinfo.param)) +
             (std::get<2>(tpinfo.param) ? "data" : "nodata");
    });

// ----------------------------------------------------------- block SSD ----

class BlockSsdProperty : public ::testing::TestWithParam<double> {};

TEST_P(BlockSsdProperty, ChurnPreservesDataAtAnyOpRatio) {
  blockssd::BlockSsdConfig c;
  c.logical_capacity = 2 * kMiB;
  c.op_ratio = GetParam();
  c.page_size = 4 * kKiB;
  c.pages_per_block = 8;  // 32 KiB erase blocks
  sim::VirtualClock clock;
  blockssd::BlockSsd dev(c, &clock);

  const u64 pages = c.logical_capacity / c.page_size;
  std::vector<u8> stamp(pages, 0);
  Rng rng(103);
  std::vector<std::byte> out(c.page_size);
  for (int i = 0; i < 4000; ++i) {
    const u64 p = rng.Uniform(pages);
    const u8 fill = static_cast<u8>(rng.Next());
    ASSERT_TRUE(
        dev.Write(p * c.page_size,
                  std::vector<std::byte>(c.page_size, std::byte(fill)))
            .ok());
    stamp[p] = fill;
    if (i % 7 == 0) {
      const u64 q = rng.Uniform(pages);
      if (stamp[q] != 0) {
        ASSERT_TRUE(dev.Read(q * c.page_size, out).ok());
        ASSERT_EQ(out[0], std::byte(stamp[q])) << "page " << q;
      }
    }
  }
  // WA is finite and at least 1; GC ran at high utilization.
  EXPECT_GE(dev.stats().WriteAmplification(), 1.0);
  EXPECT_LT(dev.stats().WriteAmplification(), 64.0);
}

INSTANTIATE_TEST_SUITE_P(OpRatios, BlockSsdProperty,
                         ::testing::Values(0.08, 0.15, 0.30, 0.50),
                         [](const ::testing::TestParamInfo<double>& tpinfo) {
                           return "op" +
                                  std::to_string(static_cast<int>(
                                      tpinfo.param * 100));
                         });

// --------------------------------------------------------- middle layer ----

// (open_zones, min_empty_zones)
using MiddleParam = std::tuple<u32, u64>;

class MiddleProperty : public ::testing::TestWithParam<MiddleParam> {};

TEST_P(MiddleProperty, RandomOpsKeepMappingBitmapCoherent) {
  const auto [open_zones, min_empty] = GetParam();
  zns::ZnsConfig zc;
  zc.zone_count = 16;
  zc.zone_size = 256 * kKiB;
  zc.zone_capacity = 256 * kKiB;
  zc.max_open_zones = 10;
  zc.max_active_zones = 12;
  sim::VirtualClock clock;
  zns::ZnsDevice dev(zc, &clock);

  middle::MiddleLayerConfig mc;
  mc.region_size = 64 * kKiB;
  mc.region_slots = 36;
  mc.open_zones = open_zones;
  mc.min_empty_zones = min_empty;
  middle::ZoneTranslationLayer layer(mc, &dev);
  ASSERT_TRUE(layer.ValidateConfig().ok());

  Rng rng(104);
  std::map<u64, u8> truth;
  std::vector<std::byte> region(mc.region_size);
  std::vector<std::byte> out(64);
  for (int i = 0; i < 700; ++i) {
    const u64 rid = rng.Uniform(mc.region_slots);
    if (rng.Chance(0.25)) {
      ASSERT_TRUE(layer.InvalidateRegion(rid).ok());
      truth.erase(rid);
    } else {
      const u8 fill = static_cast<u8>(rng.Next() | 1);
      std::fill(region.begin(), region.end(), std::byte(fill));
      auto w = layer.WriteRegion(rid, region, sim::IoMode::kForeground);
      ASSERT_TRUE(w.ok()) << w.status().ToString();
      truth[rid] = fill;
    }
    // Spot-check a random region against the reference.
    const u64 probe = rng.Uniform(mc.region_slots);
    auto it = truth.find(probe);
    auto r = layer.ReadRegion(probe, 0, out);
    if (it == truth.end()) {
      ASSERT_FALSE(r.ok());
    } else {
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      ASSERT_EQ(out[0], std::byte(it->second)) << "region " << probe;
    }
  }
  // Final coherence: mapping <-> bitmap <-> truth.
  for (u64 rid = 0; rid < mc.region_slots; ++rid) {
    const auto loc = layer.GetLocation(rid);
    EXPECT_EQ(loc.has_value(), truth.count(rid) > 0) << "region " << rid;
    if (loc) {
      EXPECT_TRUE(layer.IsSlotValid(loc->zone, loc->slot));
    }
  }
  EXPECT_GE(layer.stats().WriteAmplification(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    GcKnobs, MiddleProperty,
    ::testing::Values(MiddleParam{1, 1}, MiddleParam{2, 2}, MiddleParam{3, 1},
                      MiddleParam{2, 4}, MiddleParam{4, 3}),
    [](const ::testing::TestParamInfo<MiddleParam>& tpinfo) {
      return "open" + std::to_string(std::get<0>(tpinfo.param)) + "minempty" +
             std::to_string(std::get<1>(tpinfo.param));
    });

// ------------------------------------------------------------- histogram ----

class HistogramProperty : public ::testing::TestWithParam<u64> {};

TEST_P(HistogramProperty, PercentilesBoundedAndOrdered) {
  Rng rng(GetParam());
  Histogram h;
  std::vector<u64> values;
  for (int i = 0; i < 20'000; ++i) {
    // Heavy-tailed values spanning nine orders of magnitude.
    const u64 v = rng.Next() % (1ULL << (8 + rng.Uniform(30)));
    h.Record(v);
    values.push_back(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    const u64 exact = values[static_cast<size_t>(
        q * static_cast<double>(values.size() - 1))];
    const u64 approx = h.Percentile(q);
    // Log-bucketing guarantees <= 12.5% relative error (plus one bucket).
    EXPECT_LE(approx, static_cast<u64>(static_cast<double>(exact) * 1.15) + 8)
        << "q=" << q;
    EXPECT_GE(static_cast<double>(approx),
              static_cast<double>(exact) * 0.85 - 8)
        << "q=" << q;
  }
  EXPECT_LE(h.P50(), h.P99());
  EXPECT_LE(h.P99(), h.max());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramProperty,
                         ::testing::Values(11, 22, 33, 44));

// ------------------------------------------------------------------ LSM ----

// (memtable_kib, block_bytes, l0_trigger)
using LsmParam = std::tuple<u64, u64, u32>;

class LsmProperty : public ::testing::TestWithParam<LsmParam> {};

TEST_P(LsmProperty, MatchesReferenceMapAcrossConfigs) {
  const auto [memtable_kib, block_bytes, l0_trigger] = GetParam();
  sim::VirtualClock clock;
  hdd::HddConfig hc;
  hc.capacity = 128 * kMiB;
  hdd::HddDevice disk(hc, &clock);

  kv::LsmConfig c;
  c.memtable_bytes = memtable_kib * kKiB;
  c.block_bytes = block_bytes;
  c.table_target_bytes = 8 * memtable_kib * kKiB;
  c.l0_compaction_trigger = l0_trigger;
  c.level_base_bytes = 64 * memtable_kib * kKiB;
  c.block_cache.capacity_bytes = 32 * kKiB;
  kv::LsmStore store(c, &disk, &clock);

  Rng rng(105);
  std::map<std::string, std::string> truth;
  for (int i = 0; i < 6000; ++i) {
    const std::string key = "key-" + std::to_string(rng.Uniform(900));
    if (rng.Chance(0.15)) {
      ASSERT_TRUE(store.Delete(key).ok());
      truth.erase(key);
    } else {
      const std::string value = "v" + std::to_string(i);
      ASSERT_TRUE(store.Put(key, value).ok());
      truth[key] = value;
    }
  }
  ASSERT_TRUE(store.Flush().ok());
  for (const auto& [k, v] : truth) {
    std::string got;
    auto g = store.Get(k, &got);
    ASSERT_TRUE(g.ok());
    ASSERT_TRUE(g->found) << k;
    EXPECT_EQ(got, v) << k;
  }
  // Deleted keys stay deleted.
  for (int i = 0; i < 900; ++i) {
    const std::string key = "key-" + std::to_string(i);
    if (truth.count(key)) continue;
    std::string got;
    auto g = store.Get(key, &got);
    ASSERT_TRUE(g.ok());
    EXPECT_FALSE(g->found) << key;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, LsmProperty,
    ::testing::Values(LsmParam{8, 512, 2}, LsmParam{16, 1024, 3},
                      LsmParam{32, 4096, 4}, LsmParam{8, 4096, 2}),
    [](const ::testing::TestParamInfo<LsmParam>& tpinfo) {
      return "mem" + std::to_string(std::get<0>(tpinfo.param)) + "blk" +
             std::to_string(std::get<1>(tpinfo.param)) + "trig" +
             std::to_string(std::get<2>(tpinfo.param));
    });

// ------------------------------------------------- cache oracle sweep ----

// Differential run of every scheme (and the sharded front-end) against the
// reference oracle: a generated history of sets/gets/deletes/flushes with
// self-describing payloads, where a hit must be byte-exact for the latest
// acked version and a never-set key must never hit. This is the harness's
// in-tree PR-gate presence; the CLI selftest explores far larger budgets.
using OracleParam = std::tuple<backends::SchemeKind, u32>;  // (scheme, shards)

class CacheOracleSweep : public ::testing::TestWithParam<OracleParam> {};

TEST_P(CacheOracleSweep, NoDivergenceFromReferenceModel) {
  const auto [scheme, shards] = GetParam();
  check::HistoryConfig config;
  config.level = check::Level::kCache;
  config.scheme = scheme;
  config.shards = shards;
  check::FitGeometryForShards(&config);
  config.seed = 23 + static_cast<u64>(scheme) * 7 + shards;
  check::GeneratorOptions gen;
  gen.ops = 2000;
  const check::History h = check::GenerateHistory(config, gen);
  const check::RunResult result = check::RunHistory(h);
  EXPECT_TRUE(result.ok) << result.Describe();
}

INSTANTIATE_TEST_SUITE_P(
    SchemesByShards, CacheOracleSweep,
    ::testing::Combine(::testing::Values(backends::SchemeKind::kBlock,
                                         backends::SchemeKind::kFile,
                                         backends::SchemeKind::kZone,
                                         backends::SchemeKind::kRegion),
                       ::testing::Values(1u, 4u)),
    [](const ::testing::TestParamInfo<OracleParam>& tpinfo) {
      std::string name;
      for (char c : backends::SchemeName(std::get<0>(tpinfo.param))) {
        if (c != '-') name.push_back(c);
      }
      return name + "x" + std::to_string(std::get<1>(tpinfo.param));
    });

// -------------------------------- scenario-driven differential sweep ----

// The scenario layer shapes traffic (phase scheduling, hot-set takeover,
// scan batches, sized objects); the model-check oracle verifies payload
// correctness. This bridge runs production-shaped op streams through the
// differential interpreter: every scenario op becomes a history op with a
// self-describing payload, so a scheme that corrupts or misroutes data
// under flash-crowd or scan pressure is caught byte-exactly. TTLs are
// stripped — the oracle models acked state, not time-based expiry — and
// object sizes are clamped to the sweep geometry's region budget.
check::History HistoryFromScenario(const workload::ScenarioSpec& spec,
                                   backends::SchemeKind scheme, u32 shards) {
  check::HistoryConfig config;
  config.level = check::Level::kCache;
  config.scheme = scheme;
  config.shards = shards;
  config.seed = spec.seed;
  check::FitGeometryForShards(&config);

  check::History h;
  h.config = config;
  workload::ScenarioStream stream(spec);
  workload::ScenarioOp sop;
  u64 seq = 0;
  while (stream.Next(&sop)) {
    check::Op op;
    op.key = sop.key_id;
    switch (sop.kind) {
      case workload::ScenarioOp::Kind::kGet:
        op.kind = check::OpKind::kGet;
        break;
      case workload::ScenarioOp::Kind::kSet:
        op.kind = check::OpKind::kSet;
        op.seq = ++seq;
        // Interpreter payloads need >= 64 bytes of header; cap at 16 KiB so
        // every object fits the sweep's region geometry with headroom.
        op.len = 64 + std::min<u64>(sop.size, 16 * kKiB);
        break;
      case workload::ScenarioOp::Kind::kDelete:
        op.kind = check::OpKind::kDelete;
        break;
    }
    h.ops.push_back(op);
  }
  check::Op flush;
  flush.kind = check::OpKind::kFlush;
  h.ops.push_back(flush);
  return h;
}

// Short inline specs, one per phase kind, all on a 96-key space so the
// sweep geometry turns over and exercises eviction under each shape.
const char* const kScenarioShapes[] = {
    "znscn v1\n"
    "scenario name=sweep_steady;seed=31;keys=96;zipf=0.9;"
    "get=0.5;set=0.4;del=0.1\n"
    "size kind=bimodal;small=512;large=8192;large_frac=0.1\n"
    "phase kind=steady;ops=1500;dur_ms=150\n",
    "znscn v1\n"
    "scenario name=sweep_diurnal;seed=32;keys=96;zipf=0.9;"
    "get=0.5;set=0.4;del=0.1\n"
    "size kind=bimodal;small=512;large=8192;large_frac=0.1\n"
    "phase kind=diurnal;ops=1500;dur_ms=200;amp=0.6;periods=2\n",
    "znscn v1\n"
    "scenario name=sweep_spike;seed=33;keys=96;zipf=0.9;"
    "get=0.5;set=0.4;del=0.1\n"
    "size kind=bimodal;small=512;large=8192;large_frac=0.1\n"
    "phase kind=steady;ops=500;dur_ms=60\n"
    "phase kind=spike;ops=1000;dur_ms=40;hot_keys=16;hot_frac=0.9\n"
    "phase kind=steady;ops=500;dur_ms=60\n",
    "znscn v1\n"
    "scenario name=sweep_scan;seed=34;keys=96;zipf=0.9;"
    "get=0.4;set=0.5;del=0.1\n"
    "size kind=fixed;small=1024\n"
    "phase kind=steady;name=fill;ops=800;dur_ms=80\n"
    "phase kind=scan;ops=800;dur_ms=40;batch=32\n",
    "znscn v1\n"
    "scenario name=sweep_ramp;seed=35;keys=96;zipf=0.9;"
    "get=0.5;set=0.4;del=0.1\n"
    "size kind=pareto;small=256;large=8192;alpha=1.3\n"
    "phase kind=ramp;ops=1500;dur_ms=150;mult=0.25;end_mult=4\n",
};

class ScenarioOracleSweep
    : public ::testing::TestWithParam<backends::SchemeKind> {};

TEST_P(ScenarioOracleSweep, ProductionShapesMatchReferenceModel) {
  const backends::SchemeKind scheme = GetParam();
  for (const char* text : kScenarioShapes) {
    auto spec = workload::ScenarioSpec::Parse(text);
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    for (u32 shards : {1u, 2u}) {
      const check::History h = HistoryFromScenario(*spec, scheme, shards);
      const check::RunResult result = check::RunHistory(h);
      EXPECT_TRUE(result.ok)
          << spec->name << " x" << shards << ": " << result.Describe();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, ScenarioOracleSweep,
    ::testing::Values(backends::SchemeKind::kBlock, backends::SchemeKind::kFile,
                      backends::SchemeKind::kZone,
                      backends::SchemeKind::kRegion),
    [](const ::testing::TestParamInfo<backends::SchemeKind>& tpinfo) {
      std::string name;
      for (char c : backends::SchemeName(tpinfo.param)) {
        if (c != '-') name.push_back(c);
      }
      return name;
    });

}  // namespace
}  // namespace zncache
