// Persistence & warm-restart recovery: region footers (cache index
// rebuild) and middle-layer slot headers (mapping rebuild).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "backends/middle_region_device.h"
#include "backends/schemes.h"
#include "cache/region_footer.h"
#include "common/random.h"
#include "fault/fault_injector.h"
#include "middle/zone_translation_layer.h"

namespace zncache {
namespace {

// ------------------------------------------------------------- footers ----

TEST(RegionFooter, RoundTrip) {
  cache::RegionFooter footer;
  footer.seal_seq = 42;
  footer.data_bytes = 10'000;
  footer.items.push_back({"alpha", 0, 100});
  footer.items.push_back({"beta", 100, 9'900});

  std::vector<std::byte> buf(cache::FooterReserve(1 * kMiB));
  ASSERT_TRUE(cache::EncodeRegionFooter(footer, buf).ok());
  auto decoded = cache::DecodeRegionFooter(buf);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->seal_seq, 42u);
  EXPECT_EQ(decoded->data_bytes, 10'000u);
  ASSERT_EQ(decoded->items.size(), 2u);
  EXPECT_EQ(decoded->items[0].key, "alpha");
  EXPECT_EQ(decoded->items[1].offset, 100u);
}

TEST(RegionFooter, EmptyItemTable) {
  cache::RegionFooter footer;
  footer.seal_seq = 1;
  std::vector<std::byte> buf(8 * kKiB);
  ASSERT_TRUE(cache::EncodeRegionFooter(footer, buf).ok());
  auto decoded = cache::DecodeRegionFooter(buf);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->items.empty());
}

TEST(RegionFooter, BadMagicIsNotFound) {
  std::vector<std::byte> zeros(8 * kKiB, std::byte{0});
  auto decoded = cache::DecodeRegionFooter(zeros);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kNotFound);
}

TEST(RegionFooter, TruncatedTableIsCorruption) {
  cache::RegionFooter footer;
  footer.seal_seq = 7;
  footer.data_bytes = 500;
  footer.items.push_back({"key", 0, 500});
  std::vector<std::byte> buf(8 * kKiB);
  ASSERT_TRUE(cache::EncodeRegionFooter(footer, buf).ok());
  // Chop mid-table.
  auto decoded = cache::DecodeRegionFooter(
      std::span<const std::byte>(buf.data(), 26));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(RegionFooter, OutOfBoundsItemIsCorruption) {
  cache::RegionFooter footer;
  footer.seal_seq = 7;
  footer.data_bytes = 100;
  footer.items.push_back({"key", 50, 100});  // 50+100 > 100
  std::vector<std::byte> buf(8 * kKiB);
  ASSERT_TRUE(cache::EncodeRegionFooter(footer, buf).ok());
  auto decoded = cache::DecodeRegionFooter(buf);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(RegionFooter, ReserveTooSmallReported) {
  cache::RegionFooter footer;
  footer.seal_seq = 1;
  for (int i = 0; i < 100; ++i) {
    footer.items.push_back({"key-" + std::to_string(i), 0, 1});
  }
  std::vector<std::byte> tiny(64);
  EXPECT_EQ(cache::EncodeRegionFooter(footer, tiny).code(),
            StatusCode::kNoSpace);
}

TEST(RegionFooter, ReserveScalesWithRegionSize) {
  EXPECT_EQ(cache::FooterReserve(1 * kMiB), 32 * kKiB);
  EXPECT_EQ(cache::FooterReserve(64 * kKiB), 8 * kKiB);  // floor
  EXPECT_EQ(cache::FooterReserve(64 * kMiB), 2 * kMiB);
}

// -------------------------------------------------- cache warm restart ----

backends::SchemeParams PersistentParams() {
  backends::SchemeParams p;
  p.zone_size = 8 * kMiB;
  p.region_size = 1 * kMiB;
  p.cache_bytes = 24 * kMiB;
  p.min_empty_zones = 1;
  p.persistent = true;
  return p;
}

// The warm-restart drill shared by every recovery test below: a fresh
// persistent engine over the same (still-populated) backend, recovered.
// Returns nullptr (after flagging the failure) if recovery did not succeed.
std::unique_ptr<cache::FlashCache> RestartedCache(cache::RegionDevice* device,
                                                  sim::VirtualClock* clock) {
  cache::FlashCacheConfig cc;
  cc.store_values = true;
  cc.persistent = true;
  auto restarted = std::make_unique<cache::FlashCache>(cc, device, clock);
  Status st = restarted->Recover();
  EXPECT_TRUE(st.ok()) << st.ToString();
  if (!st.ok()) return nullptr;
  return restarted;
}

TEST(CacheRecovery, WarmRestartRestoresIndexAndValues) {
  sim::VirtualClock clock;
  auto scheme = MakeScheme(backends::SchemeKind::kRegion, PersistentParams(),
                           &clock);
  ASSERT_TRUE(scheme.ok()) << scheme.status().ToString();

  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(scheme->cache
                    ->Set("key-" + std::to_string(i),
                          std::string(200 * kKiB / 100, 'a' + i % 26))
                    .ok());
  }
  ASSERT_TRUE(scheme->cache->Flush().ok());
  const u64 items_before = scheme->cache->item_count();

  auto restarted = RestartedCache(scheme->device.get(), &clock);
  ASSERT_NE(restarted, nullptr);
  EXPECT_GT(restarted->recovered_regions(), 0u);
  EXPECT_GE(restarted->item_count(), items_before - 5);  // open-region tail

  std::string v;
  auto g = restarted->Get("key-7", &v);
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(g->hit);
  EXPECT_EQ(v[0], 'a' + 7 % 26);
}

TEST(CacheRecovery, NewestVersionWinsAfterRestart) {
  sim::VirtualClock clock;
  auto scheme = MakeScheme(backends::SchemeKind::kRegion, PersistentParams(),
                           &clock);
  ASSERT_TRUE(scheme.ok());
  ASSERT_TRUE(scheme->cache->Set("k", std::string(600 * 1024, '1')).ok());
  ASSERT_TRUE(scheme->cache->Set("pad1", std::string(300 * 1024, 'p')).ok());
  ASSERT_TRUE(scheme->cache->Set("k", std::string(600 * 1024, '2')).ok());
  ASSERT_TRUE(scheme->cache->Flush().ok());

  auto restarted = RestartedCache(scheme->device.get(), &clock);
  ASSERT_NE(restarted, nullptr);
  std::string v;
  auto g = restarted->Get("k", &v);
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(g->hit);
  EXPECT_EQ(v[0], '2');
}

TEST(CacheRecovery, UnflushedTailIsLost) {
  // Data still in the open region buffer at "crash" is gone — only sealed
  // regions recover. (The paper's cache semantics: flash holds the truth.)
  sim::VirtualClock clock;
  auto scheme = MakeScheme(backends::SchemeKind::kRegion, PersistentParams(),
                           &clock);
  ASSERT_TRUE(scheme.ok());
  ASSERT_TRUE(scheme->cache->Set("tiny", "x").ok());  // stays in the buffer

  auto restarted = RestartedCache(scheme->device.get(), &clock);
  ASSERT_NE(restarted, nullptr);
  auto g = restarted->Get("tiny");
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(g->hit);
}

TEST(CacheRecovery, RequiresPersistentMode) {
  sim::VirtualClock clock;
  backends::SchemeParams p = PersistentParams();
  p.persistent = false;
  p.store_data = true;
  auto scheme = MakeScheme(backends::SchemeKind::kRegion, p, &clock);
  ASSERT_TRUE(scheme.ok());
  cache::FlashCacheConfig cc;
  cc.store_values = true;
  cache::FlashCache plain(cc, scheme->device.get(), &clock);
  EXPECT_EQ(plain.Recover().code(), StatusCode::kFailedPrecondition);
}

TEST(CacheRecovery, RefusesAfterUse) {
  sim::VirtualClock clock;
  auto scheme = MakeScheme(backends::SchemeKind::kRegion, PersistentParams(),
                           &clock);
  ASSERT_TRUE(scheme.ok());
  ASSERT_TRUE(scheme->cache->Set("a", "1").ok());
  EXPECT_EQ(scheme->cache->Recover().code(), StatusCode::kFailedPrecondition);
}

TEST(CacheRecovery, SurvivesRandomWorkloadRestart) {
  sim::VirtualClock clock;
  auto scheme = MakeScheme(backends::SchemeKind::kRegion, PersistentParams(),
                           &clock);
  ASSERT_TRUE(scheme.ok());

  Rng rng(201);
  std::map<std::string, char> truth;
  for (int i = 0; i < 1500; ++i) {
    const std::string key = "k" + std::to_string(rng.Uniform(300));
    const char fill = static_cast<char>('a' + i % 26);
    ASSERT_TRUE(
        scheme->cache->Set(key, std::string(1 + rng.Uniform(30 * 1024), fill))
            .ok());
    truth[key] = fill;
  }
  ASSERT_TRUE(scheme->cache->Flush().ok());

  auto restarted = RestartedCache(scheme->device.get(), &clock);
  ASSERT_NE(restarted, nullptr);

  // Every recovered hit must return the newest value; misses are allowed
  // (evictions), corruption is not.
  std::string v;
  for (const auto& [key, fill] : truth) {
    auto g = restarted->Get(key, &v);
    ASSERT_TRUE(g.ok());
    if (g->hit) {
      EXPECT_EQ(v[0], fill) << key;
    }
  }
}

// --------------------------------------- torn write + warm restart ----

// The crash-during-flush drill, for all four backends: a region flush is
// torn at the device write pointer (only a prefix lands), the machine
// "restarts", and Recover() must land the torn region in the existing
// undecodable-tail => free-region path — durable regions come back with
// intact values, torn keys miss cleanly, and no read ever returns garbage.
class TornWriteRestartTest
    : public ::testing::TestWithParam<backends::SchemeKind> {
 protected:
  static std::string ValueFor(int k) {
    return std::string(100 * 1024, static_cast<char>('a' + k % 26));
  }
};

TEST_P(TornWriteRestartTest, TornFlushRecoversAsFreeRegion) {
  sim::VirtualClock clock;
  fault::FaultInjector injector{fault::FaultPlan{}};
  backends::SchemeParams p = PersistentParams();
  p.faults = &injector;
  auto scheme = MakeScheme(GetParam(), p, &clock);
  ASSERT_TRUE(scheme.ok()) << scheme.status().ToString();
  cache::FlashCache& cache = *scheme->cache;

  // Fill durable state: two sealed regions plus the flushed open tail.
  int warm = 0;
  while (cache.stats().flushed_regions < 2) {
    ASSERT_TRUE(cache.Set("warm" + std::to_string(warm), ValueFor(warm)).ok());
    ++warm;
    ASSERT_LT(warm, 500) << "cache never sealed two regions";
  }
  ASSERT_TRUE(cache.Flush().ok());

  // From here on device writes tear at the write pointer; the fire budget
  // also covers the bounded retries of the layers underneath.
  fault::FaultRule rule;
  rule.action = fault::FaultAction::kTornWrite;
  rule.count = 64;
  injector.Arm(rule);
  int torn = 0;
  while (cache.stats().region_lost == 0) {
    ASSERT_TRUE(cache.Set("torn" + std::to_string(torn), ValueFor(torn)).ok());
    ++torn;
    ASSERT_LT(torn, 500) << "no flush ever tore";
  }
  EXPECT_GE(injector.stats().torn_writes, 1u);

  // Restart: fresh engine over the same (partially-torn) backend.
  auto restarted = RestartedCache(scheme->device.get(), &clock);
  ASSERT_NE(restarted, nullptr);
  EXPECT_GE(restarted->recovered_regions(), 2u);

  // Durable keys that survived (the torn phase may have evicted some) hit
  // with byte-intact values; lost keys miss — never an error, never stale
  // bytes from the torn region.
  std::string v;
  u64 hits = 0;
  for (int k = 0; k < warm; ++k) {
    auto g = restarted->Get("warm" + std::to_string(k), &v);
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    if (g->hit) {
      ++hits;
      EXPECT_TRUE(v == ValueFor(k)) << "warm" << k << " corrupted";
    }
  }
  EXPECT_GT(hits, 0u);
  for (int k = 0; k < torn; ++k) {
    auto g = restarted->Get("torn" + std::to_string(k), &v);
    ASSERT_TRUE(g.ok());
    EXPECT_FALSE(g->hit) << "torn" << k << " served from a torn region";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, TornWriteRestartTest,
    ::testing::Values(backends::SchemeKind::kRegion,
                      backends::SchemeKind::kZone,
                      backends::SchemeKind::kFile,
                      backends::SchemeKind::kBlock),
    [](const ::testing::TestParamInfo<backends::SchemeKind>& tpinfo) {
      // "Region-Cache" -> "RegionCache": gtest names must be alphanumeric.
      std::string name;
      for (char c : backends::SchemeName(tpinfo.param)) {
        if (c != '-') name.push_back(c);
      }
      return name;
    });

// ----------------------------------------- crash-point regressions ----

// Whole-machine crash points around device writes (the fault layer's crash
// machine, same mechanism the model-checking harness explores): arm a torn
// crash at a sampled write index, power-cycle, recover, and require the
// recovered state to be a subset of what was written — hits byte-intact,
// losses clean misses, never garbage.
class CrashPointRestartTest
    : public ::testing::TestWithParam<backends::SchemeKind> {
 protected:
  static std::string ValueFor(int k) {
    return std::string(60 * 1024, static_cast<char>('a' + k % 26));
  }
};

TEST_P(CrashPointRestartTest, TornCrashRecoversToSubset) {
  for (u64 crash_offset : {1u, 3u, 9u}) {
    sim::VirtualClock clock;
    fault::FaultInjector injector{fault::FaultPlan{}};
    backends::SchemeParams p = PersistentParams();
    p.faults = &injector;
    auto scheme = MakeScheme(GetParam(), p, &clock);
    ASSERT_TRUE(scheme.ok()) << scheme.status().ToString();

    // Durable warm set, then arm a crash a few writes into the future and
    // keep writing until the machine halts (sets on a crashed machine may
    // fail; that is the point).
    int k = 0;
    for (; k < 20; ++k) {
      ASSERT_TRUE(scheme->cache->Set("c" + std::to_string(k), ValueFor(k))
                      .ok());
    }
    ASSERT_TRUE(scheme->cache->Flush().ok());
    injector.ArmCrash(injector.writes_seen() + crash_offset,
                      fault::CrashMode::kTorn);
    // Write until the crash fires; some backends only touch the device on
    // a region seal, and Zone-Cache's regions are whole 8 MiB zones
    // (~137 sets of 60 KiB per device write), so this can take thousands
    // of sets to accumulate crash_offset writes.
    for (; k < 3000 && !injector.crashed(); ++k) {
      (void)scheme->cache->Set("c" + std::to_string(k), ValueFor(k));
    }
    ASSERT_TRUE(injector.crashed()) << "crash point never reached";

    // Power cycle: clear the crash, restart the backend stack, recover.
    injector.ClearCrash();
    ASSERT_TRUE(scheme->device->Restart().ok());
    auto restarted = RestartedCache(scheme->device.get(), &clock);
    ASSERT_NE(restarted, nullptr);

    std::string v;
    for (int i = 0; i < k; ++i) {
      auto g = restarted->Get("c" + std::to_string(i), &v);
      ASSERT_TRUE(g.ok()) << g.status().ToString();
      if (g->hit) {
        EXPECT_TRUE(v == ValueFor(i))
            << "c" << i << " served torn bytes after crash at +"
            << crash_offset;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, CrashPointRestartTest,
    ::testing::Values(backends::SchemeKind::kRegion,
                      backends::SchemeKind::kZone,
                      backends::SchemeKind::kFile,
                      backends::SchemeKind::kBlock),
    [](const ::testing::TestParamInfo<backends::SchemeKind>& tpinfo) {
      std::string name;
      for (char c : backends::SchemeName(tpinfo.param)) {
        if (c != '-') name.push_back(c);
      }
      return name;
    });

// ----------------------------------------- middle-layer warm restart ----

class MiddleRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    zns::ZnsConfig zc;
    zc.zone_count = 12;
    zc.zone_size = 1 * kMiB;
    zc.zone_capacity = 1 * kMiB;
    zc.max_open_zones = 6;
    zc.max_active_zones = 8;
    dev_ = std::make_unique<zns::ZnsDevice>(zc, &clock_);
    layer_ = std::make_unique<middle::ZoneTranslationLayer>(Config(),
                                                            dev_.get());
    ASSERT_TRUE(layer_->ValidateConfig().ok())
        << layer_->ValidateConfig().ToString();
  }

  static middle::MiddleLayerConfig Config() {
    middle::MiddleLayerConfig mc;
    mc.region_size = 64 * kKiB;
    mc.region_slots = 80;
    mc.open_zones = 2;
    mc.min_empty_zones = 2;
    mc.persist_headers = true;
    return mc;
  }

  Status Write(middle::ZoneTranslationLayer& layer, u64 rid, char fill) {
    std::vector<std::byte> data(64 * kKiB, std::byte(fill));
    auto r = layer.WriteRegion(rid, data, sim::IoMode::kForeground);
    return r.ok() ? Status::Ok() : r.status();
  }

  sim::VirtualClock clock_;
  std::unique_ptr<zns::ZnsDevice> dev_;
  std::unique_ptr<middle::ZoneTranslationLayer> layer_;
};

TEST_F(MiddleRecoveryTest, HeadersShrinkRegionsPerZone) {
  // 1 MiB zone / (64 KiB + 4 KiB header) = 15 slots, not 16.
  EXPECT_EQ(layer_->regions_per_zone(), 15u);
  EXPECT_EQ(layer_->slot_stride(), 68 * kKiB);
}

TEST_F(MiddleRecoveryTest, RecoverRebuildsMappings) {
  for (u64 r = 0; r < 30; ++r) {
    ASSERT_TRUE(Write(*layer_, r, static_cast<char>('A' + r % 26)).ok());
  }
  // Restart: fresh layer over the same device.
  middle::ZoneTranslationLayer restarted(Config(), dev_.get());
  ASSERT_TRUE(restarted.Recover().ok());

  std::vector<std::byte> out(16);
  for (u64 r = 0; r < 30; ++r) {
    ASSERT_TRUE(restarted.GetLocation(r).has_value()) << "region " << r;
    ASSERT_TRUE(restarted.ReadRegion(r, 0, out).ok()) << "region " << r;
    EXPECT_EQ(out[0], std::byte(static_cast<char>('A' + r % 26)));
  }
}

TEST_F(MiddleRecoveryTest, HighestVersionWinsOnRewrite) {
  ASSERT_TRUE(Write(*layer_, 5, 'x').ok());
  ASSERT_TRUE(Write(*layer_, 5, 'y').ok());  // old copy still on flash

  middle::ZoneTranslationLayer restarted(Config(), dev_.get());
  ASSERT_TRUE(restarted.Recover().ok());
  std::vector<std::byte> out(8);
  ASSERT_TRUE(restarted.ReadRegion(5, 0, out).ok());
  EXPECT_EQ(out[0], std::byte('y'));
}

TEST_F(MiddleRecoveryTest, RecoveredLayerKeepsWriting) {
  for (u64 r = 0; r < 20; ++r) ASSERT_TRUE(Write(*layer_, r, 'a').ok());

  middle::ZoneTranslationLayer restarted(Config(), dev_.get());
  ASSERT_TRUE(restarted.Recover().ok());
  // Continue writing (including rewrites) after recovery; GC must cope.
  Rng rng(202);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(Write(restarted, rng.Uniform(80), 'b').ok());
  }
  EXPECT_GE(restarted.stats().WriteAmplification(), 1.0);
}

TEST_F(MiddleRecoveryTest, RecoverRequiresPersistentMode) {
  middle::MiddleLayerConfig mc = Config();
  mc.persist_headers = false;
  middle::ZoneTranslationLayer plain(mc, dev_.get());
  EXPECT_EQ(plain.Recover().code(), StatusCode::kFailedPrecondition);
}

TEST_F(MiddleRecoveryTest, RecoverOnEmptyDeviceIsClean) {
  middle::ZoneTranslationLayer restarted(Config(), dev_.get());
  ASSERT_TRUE(restarted.Recover().ok());
  for (u64 r = 0; r < 80; ++r) {
    EXPECT_FALSE(restarted.GetLocation(r).has_value());
  }
}

// A torn crash during a slot rewrite must never recover mixed bytes: the
// slot header's payload checksum rejects the torn image and recovery keeps
// the older intact version (or drops the mapping) instead.
TEST(MiddleCrashRecovery, TornSlotNeverRecoversMixedBytes) {
  for (u64 crash_offset : {1u, 2u, 5u}) {
    sim::VirtualClock clock;
    fault::FaultInjector injector{fault::FaultPlan{}};
    zns::ZnsConfig zc;
    zc.zone_count = 12;
    zc.zone_size = 1 * kMiB;
    zc.zone_capacity = 1 * kMiB;
    zc.max_open_zones = 6;
    zc.max_active_zones = 8;
    zc.faults = &injector;
    zns::ZnsDevice dev(zc, &clock);
    middle::MiddleLayerConfig mc;
    mc.region_size = 64 * kKiB;
    mc.region_slots = 40;
    mc.open_zones = 2;
    mc.min_empty_zones = 2;
    mc.persist_headers = true;
    middle::ZoneTranslationLayer layer(mc, &dev);
    ASSERT_TRUE(layer.ValidateConfig().ok());

    auto write = [&](u64 rid, char fill) {
      std::vector<std::byte> data(mc.region_size, std::byte(fill));
      return layer.WriteRegion(rid, data, sim::IoMode::kForeground);
    };
    for (u64 r = 0; r < 20; ++r) {
      ASSERT_TRUE(write(r, static_cast<char>('A' + r)).ok());
    }
    injector.ArmCrash(injector.writes_seen() + crash_offset,
                      fault::CrashMode::kTorn);
    for (u64 r = 0; r < 20 && !injector.crashed(); ++r) {
      (void)write(r, static_cast<char>('a' + r));
    }
    ASSERT_TRUE(injector.crashed());

    injector.ClearCrash();
    middle::ZoneTranslationLayer restarted(mc, &dev);
    ASSERT_TRUE(restarted.Recover().ok());
    std::vector<std::byte> out(mc.region_size);
    for (u64 r = 0; r < 20; ++r) {
      if (!restarted.GetLocation(r).has_value()) continue;
      ASSERT_TRUE(restarted.ReadRegion(r, 0, out).ok()) << "region " << r;
      const std::byte first = out[0];
      EXPECT_TRUE(first == std::byte(static_cast<char>('A' + r)) ||
                  first == std::byte(static_cast<char>('a' + r)))
          << "region " << r << " recovered foreign bytes";
      for (u64 i = 1; i < out.size(); ++i) {
        ASSERT_EQ(out[i], first)
            << "region " << r << " recovered torn bytes at offset " << i;
      }
    }
  }
}

}  // namespace
}  // namespace zncache
