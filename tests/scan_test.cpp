#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "common/random.h"
#include "kv/lsm_store.h"

namespace zncache::kv {
namespace {

class ScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clock_ = std::make_unique<sim::VirtualClock>();
    hdd::HddConfig hc;
    hc.capacity = 256 * kMiB;
    hdd_ = std::make_unique<hdd::HddDevice>(hc, clock_.get());
    LsmConfig c;
    c.memtable_bytes = 16 * kKiB;
    c.block_bytes = 1 * kKiB;
    c.table_target_bytes = 32 * kKiB;
    c.l0_compaction_trigger = 3;
    c.level_base_bytes = 128 * kKiB;
    c.max_levels = 4;
    c.block_cache.capacity_bytes = 64 * kKiB;
    store_ = std::make_unique<LsmStore>(c, hdd_.get(), clock_.get());
  }

  static std::string Key(int i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key-%06d", i);
    return buf;
  }

  std::unique_ptr<sim::VirtualClock> clock_;
  std::unique_ptr<hdd::HddDevice> hdd_;
  std::unique_ptr<LsmStore> store_;
};

TEST_F(ScanTest, EmptyStore) {
  auto r = store_->Scan("", 10);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->entries.empty());
}

TEST_F(ScanTest, MemtableOnly) {
  ASSERT_TRUE(store_->Put(Key(3), "c").ok());
  ASSERT_TRUE(store_->Put(Key(1), "a").ok());
  ASSERT_TRUE(store_->Put(Key(2), "b").ok());
  auto r = store_->Scan("", 10);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->entries.size(), 3u);
  EXPECT_EQ(r->entries[0].key, Key(1));
  EXPECT_EQ(r->entries[1].value, "b");
  EXPECT_EQ(r->entries[2].key, Key(3));
}

TEST_F(ScanTest, StartBoundRespected) {
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(store_->Put(Key(i), "v").ok());
  auto r = store_->Scan(Key(6), 10);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->entries.size(), 4u);
  EXPECT_EQ(r->entries.front().key, Key(6));
}

TEST_F(ScanTest, MaxEntriesBound) {
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(store_->Put(Key(i), "v").ok());
  auto r = store_->Scan("", 7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->entries.size(), 7u);
}

TEST_F(ScanTest, MergesMemtableAndTables) {
  // Old versions on disk, new versions in the memtable.
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(store_->Put(Key(i), "old").ok());
  ASSERT_TRUE(store_->Flush().ok());
  for (int i = 5; i < 10; ++i) ASSERT_TRUE(store_->Put(Key(i), "new").ok());

  auto r = store_->Scan(Key(3), 10);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->entries.size(), 10u);
  EXPECT_EQ(r->entries[0].value, "old");  // key-3
  EXPECT_EQ(r->entries[2].value, "new");  // key-5
  EXPECT_EQ(r->entries[6].value, "new");  // key-9
  EXPECT_EQ(r->entries[7].value, "old");  // key-10
}

TEST_F(ScanTest, TombstonesSuppressOlderVersions) {
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(store_->Put(Key(i), "v").ok());
  ASSERT_TRUE(store_->Flush().ok());
  ASSERT_TRUE(store_->Delete(Key(4)).ok());
  ASSERT_TRUE(store_->Delete(Key(5)).ok());

  auto r = store_->Scan("", 20);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->entries.size(), 8u);
  for (const auto& e : r->entries) {
    EXPECT_NE(e.key, Key(4));
    EXPECT_NE(e.key, Key(5));
  }
}

TEST_F(ScanTest, MatchesReferenceAfterHeavyChurn) {
  Rng rng(301);
  std::map<std::string, std::string> truth;
  for (int i = 0; i < 6000; ++i) {
    const std::string key = Key(static_cast<int>(rng.Uniform(800)));
    if (rng.Chance(0.2)) {
      ASSERT_TRUE(store_->Delete(key).ok());
      truth.erase(key);
    } else {
      const std::string value = "v" + std::to_string(i);
      ASSERT_TRUE(store_->Put(key, value).ok());
      truth[key] = value;
    }
  }
  // Scans at random positions must match std::map ranges exactly.
  for (int trial = 0; trial < 20; ++trial) {
    const std::string start = Key(static_cast<int>(rng.Uniform(800)));
    auto r = store_->Scan(start, 25);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    auto it = truth.lower_bound(start);
    for (const ScanEntry& e : r->entries) {
      ASSERT_NE(it, truth.end()) << "scan returned extra key " << e.key;
      EXPECT_EQ(e.key, it->first);
      EXPECT_EQ(e.value, it->second);
      ++it;
    }
    // Short result only if the reference also ran out.
    if (r->entries.size() < 25) {
      EXPECT_EQ(it, truth.end());
    }
  }
}

TEST_F(ScanTest, ScanHasSimulatedLatency) {
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(store_->Put(Key(i), std::string(64, 'v')).ok());
  }
  ASSERT_TRUE(store_->Flush().ok());
  auto r = store_->Scan(Key(100), 200);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->latency, 0u);  // block fetches hit the (simulated) disk
}

TEST_F(ScanTest, ZeroMaxEntries) {
  ASSERT_TRUE(store_->Put(Key(1), "v").ok());
  auto r = store_->Scan("", 0);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->entries.empty());
}

}  // namespace
}  // namespace zncache::kv
