// Tests for the declarative scenario layer (src/workload/scenario.h):
// spec round-trip and malformed rejection, stream determinism, phase
// timing in virtual nanoseconds, load-curve shaping, size-distribution
// moments, TTL emission, and the built-in catalog.
#include "workload/scenario.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "workload/scenario_catalog.h"

namespace zncache::workload {
namespace {

std::vector<ScenarioOp> Drain(const ScenarioSpec& spec) {
  ScenarioStream stream(spec);
  std::vector<ScenarioOp> ops;
  ScenarioOp op;
  while (stream.Next(&op)) ops.push_back(op);
  return ops;
}

ScenarioSpec BaseSpec() {
  ScenarioSpec s;
  s.name = "test";
  s.seed = 7;
  s.key_space = 5000;
  s.zipf_theta = 0.9;
  ScenarioPhase p;
  p.kind = PhaseKind::kSteady;
  p.ops = 2000;
  p.duration_ns = 200 * sim::kMillisecond;
  s.phases.push_back(p);
  return s;
}

TEST(ScenarioSpecTest, SerializeParseRoundTripsEveryField) {
  ScenarioSpec s;
  s.name = "kitchen_sink";
  s.seed = 42;
  s.key_space = 12345;
  s.zipf_theta = 0.73;
  s.get_ratio = 0.55;
  s.set_ratio = 0.35;
  s.del_ratio = 0.1;
  s.size.kind = SizeDistKind::kPareto;
  s.size.min = 2048;
  s.size.max = 131072;
  s.size.alpha = 1.17;
  s.ttl_fraction = 0.4;
  s.ttl_min_ns = 3 * sim::kMillisecond;
  s.ttl_max_ns = 900 * sim::kMillisecond;
  s.admission_doorkeeper_bits = 65536;
  s.admission_rotate_ns = 250 * sim::kMillisecond;
  s.admission_max_size = 65536;
  s.budget_get_p99_ns = 5 * sim::kMillisecond;
  s.budget_set_p99_ns = 4 * sim::kMillisecond;
  s.budget_p999_mult = 3.5;
  ScenarioPhase warm;
  warm.kind = PhaseKind::kSteady;
  warm.name = "warm";
  warm.ops = 100;
  warm.duration_ns = 10 * sim::kMillisecond;
  warm.start_mult = 0.5;
  warm.end_mult = 0.5;
  s.phases.push_back(warm);
  ScenarioPhase crowd;
  crowd.kind = PhaseKind::kSpike;
  crowd.name = "crowd";
  crowd.ops = 300;
  crowd.duration_ns = 30 * sim::kMillisecond;
  crowd.hot_keys = 32;
  crowd.hot_frac = 0.85;
  crowd.get_ratio = 0.9;
  crowd.set_ratio = 0.1;
  crowd.del_ratio = 0.0;
  s.phases.push_back(crowd);

  const std::string text = s.Serialize();
  auto parsed = ScenarioSpec::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Serialize(), text);
  EXPECT_EQ(parsed->name, "kitchen_sink");
  EXPECT_EQ(parsed->size.kind, SizeDistKind::kPareto);
  EXPECT_EQ(parsed->admission_doorkeeper_bits, 65536u);
  ASSERT_EQ(parsed->phases.size(), 2u);
  EXPECT_EQ(parsed->phases[1].kind, PhaseKind::kSpike);
  EXPECT_DOUBLE_EQ(parsed->phases[1].hot_frac, 0.85);
  EXPECT_DOUBLE_EQ(parsed->phases[1].get_ratio, 0.9);
  // Stream equality, not just field equality.
  EXPECT_EQ(ScenarioFingerprint(s), ScenarioFingerprint(*parsed));
}

TEST(ScenarioSpecTest, MillisecondSpellingsParse) {
  auto spec = ScenarioSpec::Parse(
      "znscn v1\n"
      "scenario name=ms;keys=100\n"
      "ttl fraction=0.5;min_ms=1.5;max_ms=20\n"
      "phase kind=steady;ops=10;dur_ms=2.5\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->ttl_min_ns, static_cast<SimNanos>(1.5e6));
  EXPECT_EQ(spec->ttl_max_ns, static_cast<SimNanos>(2e7));
  EXPECT_EQ(spec->phases[0].duration_ns, static_cast<SimNanos>(2.5e6));
  // Phase name defaults to the kind name.
  EXPECT_EQ(spec->phases[0].name, "steady");
}

TEST(ScenarioSpecTest, MalformedSpecsAreRejected) {
  const char* bad[] = {
      // Wrong magic.
      "znsXX v9\nscenario name=a\nphase kind=steady;ops=1;dur_ns=1\n",
      // Missing scenario line.
      "znscn v1\nphase kind=steady;ops=1;dur_ns=1\n",
      // No phases.
      "znscn v1\nscenario name=a\n",
      // Unknown section.
      "znscn v1\nscenario name=a\nwarp kind=steady\n"
      "phase kind=steady;ops=1;dur_ns=1\n",
      // Unknown key.
      "znscn v1\nscenario name=a;volume=11\n"
      "phase kind=steady;ops=1;dur_ns=1\n",
      // Malformed clause (no '=').
      "znscn v1\nscenario name=a\nphase kind\n",
      // Bad integer.
      "znscn v1\nscenario name=a;keys=many\n"
      "phase kind=steady;ops=1;dur_ns=1\n",
      // Zero key space.
      "znscn v1\nscenario name=a;keys=0\n"
      "phase kind=steady;ops=1;dur_ns=1\n",
      // Zero-op phase.
      "znscn v1\nscenario name=a\nphase kind=steady;ops=0;dur_ns=1\n",
      // Unknown phase kind.
      "znscn v1\nscenario name=a\nphase kind=hexagonal;ops=1;dur_ns=1\n",
      // TTL fraction without a range.
      "znscn v1\nscenario name=a\nttl fraction=0.5\n"
      "phase kind=steady;ops=1;dur_ns=1\n",
      // Diurnal amplitude >= 1 (rate would go negative).
      "znscn v1\nscenario name=a\n"
      "phase kind=diurnal;ops=1;dur_ns=1;amp=1.5\n",
      // Spike hot set larger than the key space.
      "znscn v1\nscenario name=a;keys=10\n"
      "phase kind=spike;ops=1;dur_ns=1;hot_keys=100\n",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(ScenarioSpec::Parse(text).ok())
        << "accepted malformed spec:\n" << text;
  }
}

TEST(ScenarioStreamTest, FingerprintIsDeterministic) {
  const ScenarioSpec s = BaseSpec();
  EXPECT_EQ(ScenarioFingerprint(s), ScenarioFingerprint(s));
  const auto a = Drain(s);
  const auto b = Drain(s);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key_id, b[i].key_id);
    EXPECT_EQ(a[i].when, b[i].when);
    EXPECT_EQ(static_cast<int>(a[i].kind), static_cast<int>(b[i].kind));
  }
}

TEST(ScenarioStreamTest, FingerprintIsSeedSensitive) {
  ScenarioSpec a = BaseSpec();
  ScenarioSpec b = BaseSpec();
  b.seed = a.seed + 1;
  EXPECT_NE(ScenarioFingerprint(a), ScenarioFingerprint(b));
}

TEST(ScenarioStreamTest, OpsLandInsideTheirPhaseWindow) {
  ScenarioSpec s = BaseSpec();
  ScenarioPhase second;
  second.kind = PhaseKind::kRamp;
  second.ops = 1500;
  second.duration_ns = 300 * sim::kMillisecond;
  second.start_mult = 0.5;
  second.end_mult = 2.0;
  s.phases.push_back(second);

  SimNanos prev = 0;
  for (const ScenarioOp& op : Drain(s)) {
    ASSERT_LT(op.phase, s.phases.size());
    const SimNanos start = s.PhaseStartNs(op.phase);
    const SimNanos end = start + s.phases[op.phase].duration_ns;
    EXPECT_GE(op.when, start);
    EXPECT_LT(op.when, end);
    EXPECT_GE(op.when, prev);  // arrivals never go backwards
    prev = op.when;
  }
}

TEST(ScenarioStreamTest, PhaseOpCountsMatchTheSpec) {
  ScenarioSpec s = BaseSpec();
  ScenarioPhase p2;
  p2.ops = 777;
  p2.duration_ns = 70 * sim::kMillisecond;
  s.phases.push_back(p2);
  std::vector<u64> per_phase(s.phases.size(), 0);
  for (const ScenarioOp& op : Drain(s)) per_phase[op.phase]++;
  EXPECT_EQ(per_phase[0], s.phases[0].ops);
  EXPECT_EQ(per_phase[1], 777u);
  EXPECT_EQ(s.TotalOps(), s.phases[0].ops + 777u);
}

TEST(ScenarioStreamTest, DiurnalFrontLoadsArrivalsWithinThePeriod) {
  ScenarioSpec s = BaseSpec();
  s.phases[0].kind = PhaseKind::kDiurnal;
  s.phases[0].amplitude = 0.8;
  s.phases[0].periods = 1.0;
  s.phases[0].ops = 10000;
  // sin is positive over the first half-period: the arrival rate runs
  // above the mean, so more than half the ops land in the first half of
  // the window (and the phase still fills its window exactly).
  u64 first_half = 0;
  const SimNanos mid = s.phases[0].duration_ns / 2;
  const auto ops = Drain(s);
  for (const ScenarioOp& op : ops) {
    if (op.when < mid) first_half++;
  }
  EXPECT_GT(first_half, ops.size() * 11 / 20);
  EXPECT_LT(ops.back().when, s.phases[0].duration_ns);
  EXPECT_GT(ops.back().when, s.phases[0].duration_ns * 9 / 10);
}

TEST(ScenarioStreamTest, RampCompressesGapsTowardTheEnd) {
  ScenarioSpec s = BaseSpec();
  s.phases[0].kind = PhaseKind::kRamp;
  s.phases[0].ops = 8000;
  s.phases[0].start_mult = 0.25;
  s.phases[0].end_mult = 3.0;
  const auto ops = Drain(s);
  // Mean inter-arrival gap over the first vs last eighth of the stream.
  const size_t n = ops.size() / 8;
  const double head_gap =
      static_cast<double>(ops[n].when - ops[0].when) / static_cast<double>(n);
  const double tail_gap =
      static_cast<double>(ops.back().when - ops[ops.size() - 1 - n].when) /
      static_cast<double>(n);
  EXPECT_GT(head_gap, 4 * tail_gap);  // 12x rate swing, allow slack
}

TEST(ScenarioStreamTest, SpikePhaseConcentratesOnTheHotBand) {
  ScenarioSpec s = BaseSpec();
  s.phases[0].kind = PhaseKind::kSpike;
  s.phases[0].ops = 8000;
  s.phases[0].hot_keys = 64;
  s.phases[0].hot_frac = 0.9;
  const auto ops = Drain(s);
  // The hot band is 64 keys out of 5000: Zipf alone cannot put 80% of
  // traffic on any 64-key window, so takeover proves the spike draw.
  std::vector<u64> keys;
  for (const ScenarioOp& op : ops) keys.push_back(op.key_id);
  std::sort(keys.begin(), keys.end());
  u64 best_window = 0;
  for (size_t lo = 0, hi = 0; hi < keys.size(); ++hi) {
    while (keys[hi] - keys[lo] >= s.phases[0].hot_keys) lo++;
    best_window = std::max<u64>(best_window, hi - lo + 1);
  }
  EXPECT_GT(best_window, ops.size() * 8 / 10);
}

TEST(ScenarioStreamTest, ScanPhaseEmitsSequentialGetBatches) {
  ScenarioSpec s = BaseSpec();
  s.phases[0].kind = PhaseKind::kScan;
  s.phases[0].ops = 1024;
  s.phases[0].scan_batch = 64;
  const auto ops = Drain(s);
  u64 sequential_steps = 0;
  for (size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(static_cast<int>(ops[i].kind),
              static_cast<int>(ScenarioOp::Kind::kGet));
    if (i > 0 &&
        ops[i].key_id == (ops[i - 1].key_id + 1) % s.key_space) {
      sequential_steps++;
    }
  }
  // 1024 ops in 16 batches of 64: at least 63/64 of steps are sequential.
  EXPECT_GE(sequential_steps, ops.size() - 16 - 1);
}

TEST(ScenarioStreamTest, BimodalSizesMatchTheConfiguredMoments) {
  ScenarioSpec s = BaseSpec();
  s.get_ratio = 0;
  s.set_ratio = 1;
  s.del_ratio = 0;
  s.size.kind = SizeDistKind::kBimodal;
  s.size.small = 512;
  s.size.large = 65536;
  s.size.large_frac = 0.1;
  s.phases[0].ops = 20000;
  u64 large = 0, total = 0;
  for (const ScenarioOp& op : Drain(s)) {
    ASSERT_TRUE(op.size == 512 || op.size == 65536) << op.size;
    if (op.size == 65536) large++;
    total++;
  }
  // Keys are Zipf-weighted so the op-level large fraction is the
  // key-level one reweighted; with a random size assignment per key the
  // two agree within a loose band.
  const double frac = static_cast<double>(large) / static_cast<double>(total);
  EXPECT_GT(frac, 0.02);
  EXPECT_LT(frac, 0.30);
}

TEST(ScenarioStreamTest, ParetoSizesStayInBoundsWithAHeavyTail) {
  ScenarioSpec s = BaseSpec();
  s.get_ratio = 0;
  s.set_ratio = 1;
  s.del_ratio = 0;
  s.size.kind = SizeDistKind::kPareto;
  s.size.min = 4096;
  s.size.max = 262144;
  s.size.alpha = 1.3;
  s.phases[0].ops = 20000;
  u64 over_2x = 0, total = 0;
  double sum = 0;
  for (const ScenarioOp& op : Drain(s)) {
    ASSERT_GE(op.size, s.size.min);
    ASSERT_LE(op.size, s.size.max);
    if (op.size > 2 * s.size.min) over_2x++;
    sum += static_cast<double>(op.size);
    total++;
  }
  EXPECT_GT(sum / static_cast<double>(total),
            static_cast<double>(s.size.min) * 1.5);  // heavy tail pulls mean up
  EXPECT_GT(over_2x, total / 20);                    // tail actually sampled
}

TEST(ScenarioStreamTest, SizeIsAStableFunctionOfTheKey) {
  ScenarioSpec s = BaseSpec();
  s.size.kind = SizeDistKind::kBimodal;
  s.phases[0].ops = 10000;
  std::vector<u64> size_of(s.key_space, 0);
  for (const ScenarioOp& op : Drain(s)) {
    if (size_of[op.key_id] == 0) {
      size_of[op.key_id] = op.size;
    } else {
      EXPECT_EQ(size_of[op.key_id], op.size)
          << "key " << op.key_id << " changed size mid-run";
    }
  }
}

TEST(ScenarioStreamTest, TtlEmissionMatchesTheConfiguredFraction) {
  ScenarioSpec s = BaseSpec();
  s.get_ratio = 0;
  s.set_ratio = 1;
  s.del_ratio = 0;
  s.ttl_fraction = 0.8;
  s.ttl_min_ns = 10 * sim::kMillisecond;
  s.ttl_max_ns = 1000 * sim::kMillisecond;
  s.phases[0].ops = 20000;
  u64 with_ttl = 0, total = 0;
  for (const ScenarioOp& op : Drain(s)) {
    total++;
    if (op.ttl_ns == 0) continue;
    with_ttl++;
    EXPECT_GE(op.ttl_ns, s.ttl_min_ns);
    EXPECT_LE(op.ttl_ns, s.ttl_max_ns);
  }
  const double frac =
      static_cast<double>(with_ttl) / static_cast<double>(total);
  EXPECT_NEAR(frac, 0.8, 0.03);
}

TEST(ScenarioStreamTest, GetsAndDeletesCarryNoTtl) {
  ScenarioSpec s = BaseSpec();
  s.ttl_fraction = 1.0;
  s.ttl_min_ns = sim::kMillisecond;
  s.ttl_max_ns = sim::kSecond;
  for (const ScenarioOp& op : Drain(s)) {
    if (op.kind != ScenarioOp::Kind::kSet) {
      EXPECT_EQ(op.ttl_ns, 0u);
    } else {
      EXPECT_GT(op.ttl_ns, 0u);
    }
  }
}

TEST(ScenarioSpecTest, ScaledShrinksOpsAndDurations) {
  ScenarioSpec s = BaseSpec();
  s.phases[0].ops = 2000;
  s.phases[0].duration_ns = 200 * sim::kMillisecond;
  ScenarioPhase tiny;
  tiny.ops = 2;
  tiny.duration_ns = 8;
  s.phases.push_back(tiny);
  const ScenarioSpec q = s.Scaled(0.25);
  EXPECT_EQ(q.phases[0].ops, 500u);
  EXPECT_EQ(q.phases[0].duration_ns, 50 * sim::kMillisecond);
  // Floors: ops and duration never hit zero.
  const ScenarioSpec z = s.Scaled(0.001);
  EXPECT_GE(z.phases[1].ops, 1u);
  EXPECT_GE(z.phases[1].duration_ns, 1u);
}

TEST(ScenarioCatalogTest, EveryBuiltinParsesAndFingerprintsStably) {
  ASSERT_FALSE(BuiltinScenarios().empty());
  for (const NamedScenario& entry : BuiltinScenarios()) {
    auto spec = ScenarioSpec::Parse(entry.text);
    ASSERT_TRUE(spec.ok())
        << entry.name << ": " << spec.status().ToString();
    EXPECT_EQ(spec->name, entry.name);
    EXPECT_FALSE(spec->phases.empty()) << entry.name;
    EXPECT_EQ(ScenarioFingerprint(*spec), ScenarioFingerprint(*spec));
    // Round-trip: the canonical form re-parses to the same stream.
    auto again = ScenarioSpec::Parse(spec->Serialize());
    ASSERT_TRUE(again.ok()) << entry.name;
    EXPECT_EQ(ScenarioFingerprint(*spec), ScenarioFingerprint(*again));
  }
}

TEST(ScenarioCatalogTest, CatalogCoversEveryPhaseKindAndAdmissionMode) {
  bool kinds[5] = {};
  bool ttl = false, doorkeeper = false, size_cap = false;
  for (const NamedScenario& entry : BuiltinScenarios()) {
    auto spec = ScenarioSpec::Parse(entry.text);
    ASSERT_TRUE(spec.ok());
    for (const ScenarioPhase& p : spec->phases) {
      kinds[static_cast<size_t>(p.kind)] = true;
    }
    ttl |= spec->ttl_fraction > 0;
    doorkeeper |= spec->admission_doorkeeper_bits > 0;
    size_cap |= spec->admission_max_size > 0;
  }
  for (bool k : kinds) EXPECT_TRUE(k);
  EXPECT_TRUE(ttl);
  EXPECT_TRUE(doorkeeper);
  EXPECT_TRUE(size_cap);
}

}  // namespace
}  // namespace zncache::workload
