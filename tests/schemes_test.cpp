#include <gtest/gtest.h>

#include "backends/middle_region_device.h"
#include "backends/schemes.h"

namespace zncache::backends {
namespace {

SchemeParams SmallParams() {
  SchemeParams p;
  p.zone_size = 8 * kMiB;
  p.region_size = 512 * kKiB;
  p.cache_bytes = 32 * kMiB;
  p.min_empty_zones = 1;
  return p;
}

TEST(Schemes, NamesAreStable) {
  EXPECT_EQ(SchemeName(SchemeKind::kBlock), "Block-Cache");
  EXPECT_EQ(SchemeName(SchemeKind::kFile), "File-Cache");
  EXPECT_EQ(SchemeName(SchemeKind::kZone), "Zone-Cache");
  EXPECT_EQ(SchemeName(SchemeKind::kRegion), "Region-Cache");
}

TEST(Schemes, AllFourBuildAndServe) {
  for (auto kind : {SchemeKind::kBlock, SchemeKind::kFile, SchemeKind::kZone,
                    SchemeKind::kRegion}) {
    sim::VirtualClock clock;
    SchemeParams p = SmallParams();
    p.store_data = true;
    auto s = MakeScheme(kind, p, &clock);
    ASSERT_TRUE(s.ok()) << SchemeName(kind) << ": "
                        << s.status().ToString();
    EXPECT_EQ(s->name, SchemeName(kind));
    ASSERT_TRUE(s->cache->Set("k", "hello").ok());
    std::string v;
    auto g = s->cache->Get("k", &v);
    ASSERT_TRUE(g.ok());
    EXPECT_TRUE(g->hit);
    EXPECT_EQ(v, "hello");
  }
}

TEST(Schemes, ZoneCacheRegionEqualsZone) {
  sim::VirtualClock clock;
  auto s = MakeScheme(SchemeKind::kZone, SmallParams(), &clock);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->device->region_size(), 8 * kMiB);
  EXPECT_EQ(s->device->region_count(), 4u);  // 32 MiB / 8 MiB
}

TEST(Schemes, SmallRegionSchemesUseRegionSize) {
  for (auto kind :
       {SchemeKind::kBlock, SchemeKind::kFile, SchemeKind::kRegion}) {
    sim::VirtualClock clock;
    auto s = MakeScheme(kind, SmallParams(), &clock);
    ASSERT_TRUE(s.ok()) << SchemeName(kind);
    EXPECT_EQ(s->device->region_size(), 512 * kKiB);
    EXPECT_EQ(s->device->region_count(), 64u);
  }
}

TEST(Schemes, CacheBytesRequired) {
  sim::VirtualClock clock;
  SchemeParams p = SmallParams();
  p.cache_bytes = 0;
  EXPECT_FALSE(MakeScheme(SchemeKind::kRegion, p, &clock).ok());
}

TEST(Schemes, ZoneCacheNeedsTwoZones) {
  sim::VirtualClock clock;
  SchemeParams p = SmallParams();
  p.cache_bytes = p.zone_size;  // one zone only
  EXPECT_FALSE(MakeScheme(SchemeKind::kZone, p, &clock).ok());
}

TEST(Schemes, DerivedZonesLeaveGcHeadroom) {
  // Without explicit device_zones, the factory must size the ZNS device so
  // the middle layer's validation passes.
  for (double op : {0.10, 0.20, 0.35}) {
    sim::VirtualClock clock;
    SchemeParams p = SmallParams();
    p.region_op_ratio = op;
    auto s = MakeScheme(SchemeKind::kRegion, p, &clock);
    ASSERT_TRUE(s.ok()) << "op=" << op << ": " << s.status().ToString();
  }
}

TEST(Schemes, ExplicitDeviceZonesRespected) {
  sim::VirtualClock clock;
  SchemeParams p = SmallParams();
  p.device_zones = 12;
  auto s = MakeScheme(SchemeKind::kRegion, p, &clock);
  ASSERT_TRUE(s.ok());
  const auto& dev = static_cast<MiddleRegionDevice*>(s->device.get())
                        ->zns_device();
  EXPECT_EQ(dev.zone_count(), 12u);
}

TEST(Schemes, HintAdapterWiredOnlyWhenRequested) {
  sim::VirtualClock clock;
  SchemeParams p = SmallParams();
  auto plain = MakeScheme(SchemeKind::kRegion, p, &clock);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->hints, nullptr);

  sim::VirtualClock clock2;
  p.hint_cold_age = 1000;
  auto hinted = MakeScheme(SchemeKind::kRegion, p, &clock2);
  ASSERT_TRUE(hinted.ok());
  EXPECT_NE(hinted->hints, nullptr);

  // Hints are a Region-Cache feature; other schemes ignore the setting.
  sim::VirtualClock clock3;
  auto zone = MakeScheme(SchemeKind::kZone, p, &clock3);
  ASSERT_TRUE(zone.ok());
  EXPECT_EQ(zone->hints, nullptr);
}

TEST(Schemes, WaFactorStartsAtOne) {
  sim::VirtualClock clock;
  auto s = MakeScheme(SchemeKind::kRegion, SmallParams(), &clock);
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s->WaFactor(), 1.0);
}

}  // namespace
}  // namespace zncache::backends
