#include <gtest/gtest.h>

#include "sim/clock.h"
#include "sim/service_timer.h"
#include "sim/timing.h"

namespace zncache::sim {
namespace {

TEST(VirtualClock, StartsAtZero) {
  VirtualClock c;
  EXPECT_EQ(c.Now(), 0u);
}

TEST(VirtualClock, AdvanceAccumulates) {
  VirtualClock c;
  c.Advance(10);
  c.Advance(5);
  EXPECT_EQ(c.Now(), 15u);
}

TEST(VirtualClock, AdvanceToNeverGoesBack) {
  VirtualClock c;
  c.Advance(100);
  c.AdvanceTo(50);
  EXPECT_EQ(c.Now(), 100u);
  c.AdvanceTo(200);
  EXPECT_EQ(c.Now(), 200u);
}

TEST(VirtualClock, ResetZeroes) {
  VirtualClock c;
  c.Advance(7);
  c.Reset();
  EXPECT_EQ(c.Now(), 0u);
}

TEST(ServiceTimer, IdleDeviceLatencyEqualsService) {
  VirtualClock c;
  ServiceTimer t(&c);
  EXPECT_EQ(t.Submit(1000), 1000u);
  EXPECT_EQ(c.Now(), 1000u);
}

TEST(ServiceTimer, BackToBackForegroundDoesNotQueue) {
  VirtualClock c;
  ServiceTimer t(&c);
  t.Submit(1000);
  // The clock already advanced to completion; the next request starts fresh.
  EXPECT_EQ(t.Submit(1000), 1000u);
  EXPECT_EQ(c.Now(), 2000u);
}

TEST(ServiceTimer, BackgroundWorkDelaysForeground) {
  VirtualClock c;
  ServiceTimer t(&c);
  t.SubmitBackground(5000);
  EXPECT_EQ(c.Now(), 0u);  // client did not wait
  // Foreground op queues behind the background work: 5000 + 1000.
  EXPECT_EQ(t.Submit(1000), 6000u);
  EXPECT_EQ(c.Now(), 6000u);
}

TEST(ServiceTimer, BackgroundStacksUp) {
  VirtualClock c;
  ServiceTimer t(&c);
  t.SubmitBackground(100);
  t.SubmitBackground(100);
  EXPECT_EQ(t.busy_until(), 200u);
}

TEST(ServiceTimer, ServeReturnsCompletion) {
  VirtualClock c;
  ServiceTimer t(&c);
  const Served bg = t.Serve(300, IoMode::kBackground);
  EXPECT_EQ(bg.latency, 0u);
  EXPECT_EQ(bg.completion, 300u);
  const Served fg = t.Serve(100, IoMode::kForeground);
  EXPECT_EQ(fg.latency, 400u);
  EXPECT_EQ(fg.completion, 400u);
}

TEST(ServiceTimer, IdleGapNotCharged) {
  VirtualClock c;
  ServiceTimer t(&c);
  t.Submit(100);
  c.Advance(10'000);  // device idles
  EXPECT_EQ(t.Submit(100), 100u);
}

TEST(IoCost, FixedPlusBandwidth) {
  IoCost cost{1000, 2.0};  // 1us + 2 bytes/ns
  EXPECT_EQ(cost.Cost(0), 1000u);
  EXPECT_EQ(cost.Cost(2000), 2000u);
}

TEST(Timing, FlashFasterThanHdd) {
  FlashTiming flash;
  HddTiming disk;
  EXPECT_LT(flash.read.Cost(4096), disk.read.Cost(4096));
  EXPECT_LT(flash.write.Cost(4096), disk.write.Cost(4096));
}

TEST(Timing, SequentialCheaperPerByte) {
  FlashTiming flash;
  const SimNanos small = flash.read.Cost(4 * kKiB);
  const SimNanos big = flash.read.Cost(1 * kMiB);
  // 256x the bytes must cost far less than 256x the latency.
  EXPECT_LT(big, small * 64);
}

}  // namespace
}  // namespace zncache::sim
