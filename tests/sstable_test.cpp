#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kv/sstable.h"

namespace zncache::kv {
namespace {

std::span<const std::byte> Span(const std::vector<std::byte>& v) {
  return std::span<const std::byte>(v);
}

// Decode a stored block (codec framing) and search it.
SstReader::BlockLookup DecodedSearch(const std::vector<std::byte>& image,
                                     const BlockIndexEntry& e,
                                     std::string_view key, std::string* value) {
  auto decoded = SstReader::DecodeBlock(
      std::span<const std::byte>(image.data() + e.offset, e.size));
  EXPECT_TRUE(decoded.ok());
  return SstReader::SearchBlock(std::span<const std::byte>(*decoded), key,
                                value);
}

std::vector<std::byte> BuildSimple(int n, u64 block_bytes = 256) {
  SstBuilder b(block_bytes);
  for (int i = 0; i < n; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%06d", i);
    EXPECT_TRUE(b.Add(key, "value-" + std::to_string(i), false).ok());
  }
  auto image = std::move(b).Finish();
  EXPECT_TRUE(image.ok());
  return std::move(*image);
}

TEST(SstBuilder, RejectsOutOfOrderKeys) {
  SstBuilder b;
  ASSERT_TRUE(b.Add("b", "1", false).ok());
  EXPECT_FALSE(b.Add("a", "2", false).ok());
  EXPECT_FALSE(b.Add("b", "dup", false).ok());  // strictly ascending
}

TEST(SstBuilder, TracksKeyRangeAndCount) {
  SstBuilder b;
  ASSERT_TRUE(b.Add("apple", "1", false).ok());
  ASSERT_TRUE(b.Add("mango", "2", false).ok());
  ASSERT_TRUE(b.Add("zebra", "3", false).ok());
  EXPECT_EQ(b.smallest_key(), "apple");
  EXPECT_EQ(b.largest_key(), "zebra");
  EXPECT_EQ(b.entry_count(), 3u);
}

TEST(SstBuilder, FinishTwiceFails) {
  SstBuilder b;
  ASSERT_TRUE(b.Add("a", "1", false).ok());
  ASSERT_TRUE(std::move(b).Finish().ok());
  EXPECT_FALSE(std::move(b).Finish().ok());
}

TEST(SstReader, OpenRejectsGarbage) {
  std::vector<std::byte> junk(100, std::byte{0x42});
  EXPECT_FALSE(SstReader::Open(Span(junk)).ok());
  std::vector<std::byte> tiny(4, std::byte{1});
  EXPECT_FALSE(SstReader::Open(Span(tiny)).ok());
}

TEST(SstReader, FooterRoundTrip) {
  auto image = BuildSimple(10);
  auto footer = DecodeFooter(Span(image));
  ASSERT_TRUE(footer.ok());
  EXPECT_EQ(footer->entry_count, 10u);
  EXPECT_EQ(footer->magic, kSstMagic);
}

TEST(SstReader, FindsEveryKey) {
  const int n = 500;
  auto image = BuildSimple(n);
  auto reader = SstReader::Open(Span(image));
  ASSERT_TRUE(reader.ok());
  EXPECT_GT(reader->index().size(), 1u);  // multiple blocks

  for (int i = 0; i < n; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%06d", i);
    auto block_idx = reader->FindBlock(key);
    ASSERT_TRUE(block_idx.has_value()) << key;
    const BlockIndexEntry& e = reader->index()[*block_idx];
    std::string value;
    const auto r = DecodedSearch(image, e, key, &value);
    ASSERT_EQ(r, SstReader::BlockLookup::kFound) << key;
    EXPECT_EQ(value, "value-" + std::to_string(i));
  }
}

TEST(SstReader, MissingKeysMiss) {
  auto image = BuildSimple(100);
  auto reader = SstReader::Open(Span(image));
  ASSERT_TRUE(reader.ok());
  // Beyond the last key: no candidate block.
  EXPECT_FALSE(reader->FindBlock("zzzz").has_value());
  // Between keys: block found but key absent.
  auto idx = reader->FindBlock("k000050x");
  ASSERT_TRUE(idx.has_value());
  const BlockIndexEntry& e = reader->index()[*idx];
  std::string v;
  EXPECT_EQ(DecodedSearch(image, e, "k000050x", &v),
            SstReader::BlockLookup::kNotFound);
}

TEST(SstReader, TombstonesSurfaced) {
  SstBuilder b(128);
  ASSERT_TRUE(b.Add("alive", "v", false).ok());
  ASSERT_TRUE(b.Add("dead", "", true).ok());
  auto image = std::move(b).Finish();
  ASSERT_TRUE(image.ok());
  auto reader = SstReader::Open(Span(*image));
  ASSERT_TRUE(reader.ok());
  auto idx = reader->FindBlock("dead");
  ASSERT_TRUE(idx.has_value());
  const BlockIndexEntry& e = reader->index()[*idx];
  std::string v;
  EXPECT_EQ(DecodedSearch(*image, e, "dead", &v),
            SstReader::BlockLookup::kTombstone);
}

TEST(SstReader, ForEachVisitsAllInOrder) {
  auto image = BuildSimple(200);
  auto reader = SstReader::Open(Span(image));
  ASSERT_TRUE(reader.ok());
  int count = 0;
  std::string prev;
  for (const BlockIndexEntry& e : reader->index()) {
    auto decoded = SstReader::DecodeBlock(
        std::span<const std::byte>(image.data() + e.offset, e.size));
    ASSERT_TRUE(decoded.ok());
    ASSERT_TRUE(SstReader::ForEachInBlock(
                    std::span<const std::byte>(*decoded),
                    [&](std::string_view k, std::string_view, bool) {
                      if (count > 0) {
                        EXPECT_LT(prev, std::string(k));
                      }
                      prev.assign(k);
                      count++;
                    })
                    .ok());
  }
  EXPECT_EQ(count, 200);
}

TEST(SstReader, IndexLastKeysAreSorted) {
  auto image = BuildSimple(1000);
  auto reader = SstReader::Open(Span(image));
  ASSERT_TRUE(reader.ok());
  for (size_t i = 1; i < reader->index().size(); ++i) {
    EXPECT_LT(reader->index()[i - 1].last_key, reader->index()[i].last_key);
  }
}

TEST(SstReader, EmptyValueAllowed) {
  SstBuilder b;
  ASSERT_TRUE(b.Add("k", "", false).ok());
  auto image = std::move(b).Finish();
  ASSERT_TRUE(image.ok());
  auto reader = SstReader::Open(Span(*image));
  ASSERT_TRUE(reader.ok());
  const BlockIndexEntry& e = reader->index()[0];
  std::string v = "sentinel";
  EXPECT_EQ(DecodedSearch(*image, e, "k", &v),
            SstReader::BlockLookup::kFound);
  EXPECT_TRUE(v.empty());
}

TEST(SstReader, CorruptBlockDetected) {
  std::vector<std::byte> bogus(16, std::byte{0xFF});
  std::string v;
  EXPECT_EQ(SstReader::SearchBlock(Span(bogus), "k", &v),
            SstReader::BlockLookup::kCorrupt);
}

}  // namespace
}  // namespace zncache::kv
