#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>

#include "backends/schemes.h"
#include "workload/trace.h"

namespace zncache::workload {
namespace {

TraceOp Get(std::string key) {
  return TraceOp{TraceOp::Kind::kGet, std::move(key), 0};
}
TraceOp Set(std::string key, u32 size) {
  return TraceOp{TraceOp::Kind::kSet, std::move(key), size};
}
TraceOp Del(std::string key) {
  return TraceOp{TraceOp::Kind::kDelete, std::move(key), 0};
}

TEST(Trace, SerializeParseRoundTrip) {
  Trace trace;
  trace.Add(Set("alpha", 4096));
  trace.Add(Get("alpha"));
  trace.Add(Del("alpha"));
  trace.Add(Get("beta"));

  auto parsed = Trace::Parse(trace.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 4u);
  EXPECT_EQ(parsed->ops()[0].kind, TraceOp::Kind::kSet);
  EXPECT_EQ(parsed->ops()[0].key, "alpha");
  EXPECT_EQ(parsed->ops()[0].value_size, 4096u);
  EXPECT_EQ(parsed->ops()[2].kind, TraceOp::Kind::kDelete);
  EXPECT_EQ(parsed->ops()[3].key, "beta");
}

TEST(Trace, ParseSkipsCommentsAndBlankLines) {
  auto parsed = Trace::Parse("# a comment\n\nG key1\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 1u);
}

TEST(Trace, ParseRejectsGarbage) {
  EXPECT_FALSE(Trace::Parse("X key\n").ok());
  EXPECT_FALSE(Trace::Parse("S key notanumber\n").ok());
  EXPECT_FALSE(Trace::Parse("G\n").ok());
}

TEST(Trace, FileRoundTrip) {
  Trace trace;
  for (int i = 0; i < 100; ++i) {
    trace.Add(Set("key-" + std::to_string(i), 100 + i));
    trace.Add(Get("key-" + std::to_string(i)));
  }
  const std::string path =
      (std::filesystem::temp_directory_path() / "zncache_trace_test.txt")
          .string();
  ASSERT_TRUE(trace.SaveTo(path).ok());
  auto loaded = Trace::LoadFrom(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 200u);
  EXPECT_EQ(loaded->Serialize(), trace.Serialize());
  std::remove(path.c_str());
}

TEST(Trace, LoadMissingFileFails) {
  EXPECT_FALSE(Trace::LoadFrom("/nonexistent/zn_trace").ok());
}

TEST(Trace, GeneratedTraceMatchesConfigMix) {
  CacheBenchConfig config;
  config.ops = 20'000;
  config.warmup_ops = 0;
  config.key_space = 5'000;
  Trace trace = GenerateTrace(config);
  ASSERT_EQ(trace.size(), 20'000u);
  u64 gets = 0, sets = 0, dels = 0;
  for (const TraceOp& op : trace.ops()) {
    switch (op.kind) {
      case TraceOp::Kind::kGet:
        gets++;
        break;
      case TraceOp::Kind::kSet:
        sets++;
        EXPECT_GE(op.value_size, config.value_min);
        EXPECT_LE(op.value_size, config.value_max);
        break;
      case TraceOp::Kind::kDelete:
        dels++;
        break;
    }
  }
  EXPECT_NEAR(static_cast<double>(gets) / 20'000, 0.5, 0.02);
  EXPECT_NEAR(static_cast<double>(sets) / 20'000, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(dels) / 20'000, 0.2, 0.02);
}

TEST(Trace, GenerationIsDeterministic) {
  CacheBenchConfig config;
  config.ops = 1'000;
  config.warmup_ops = 0;
  EXPECT_EQ(GenerateTrace(config).Serialize(),
            GenerateTrace(config).Serialize());
}

class TraceReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clock_ = std::make_unique<sim::VirtualClock>();
    backends::SchemeParams params;
    params.zone_size = 8 * kMiB;
    params.region_size = 512 * kKiB;
    params.cache_bytes = 24 * kMiB;
    params.min_empty_zones = 1;
    auto scheme = backends::MakeScheme(backends::SchemeKind::kRegion, params,
                                       clock_.get());
    ASSERT_TRUE(scheme.ok());
    scheme_ = std::make_unique<backends::SchemeInstance>(std::move(*scheme));
  }

  std::unique_ptr<sim::VirtualClock> clock_;
  std::unique_ptr<backends::SchemeInstance> scheme_;
};

TEST_F(TraceReplayTest, ReplayDrivesCache) {
  Trace trace;
  trace.Add(Set("a", 4096));
  trace.Add(Get("a"));
  trace.Add(Get("missing"));
  trace.Add(Del("a"));
  trace.Add(Get("a"));

  auto r = ReplayTrace(trace, *scheme_->cache, *clock_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->ops, 5u);
  EXPECT_EQ(r->gets, 3u);
  EXPECT_EQ(r->hits, 1u);
  EXPECT_GT(r->sim_time, 0u);
}

TEST_F(TraceReplayTest, GeneratedTraceReplaysAcrossSchemes) {
  CacheBenchConfig config;
  config.ops = 15'000;
  config.warmup_ops = 0;
  config.key_space = 2'000;
  config.value_min = 1 * kKiB;
  config.value_max = 8 * kKiB;
  const Trace trace = GenerateTrace(config);

  auto r1 = ReplayTrace(trace, *scheme_->cache, *clock_);
  ASSERT_TRUE(r1.ok());
  EXPECT_GT(r1->HitRatio(), 0.1);  // sets populate, later gets hit

  // A second scheme replays the identical stream (trace-based comparison).
  backends::SchemeParams params;
  params.zone_size = 8 * kMiB;
  params.cache_bytes = 24 * kMiB;
  auto zone = backends::MakeScheme(backends::SchemeKind::kZone, params,
                                   clock_.get());
  ASSERT_TRUE(zone.ok());
  auto r2 = ReplayTrace(trace, *zone->cache, *clock_);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->ops, r1->ops);
  EXPECT_EQ(r2->gets, r1->gets);
}

TEST_F(TraceReplayTest, OversizedSetSkippedNotFatal) {
  Trace trace;
  trace.Add(Set("huge", 100 * kMiB));
  trace.Add(Get("huge"));
  auto r = ReplayTrace(trace, *scheme_->cache, *clock_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->hits, 0u);
}

}  // namespace
}  // namespace zncache::workload
