#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kv/wal.h"

namespace zncache::kv {
namespace {

class WalTest : public ::testing::Test {
 protected:
  WalTest() : dev_(MakeHdd(), &clock_), wal_(MakeWal(), &dev_) {}

  static hdd::HddConfig MakeHdd() {
    hdd::HddConfig c;
    c.capacity = 8 * kMiB;
    return c;
  }
  static WalConfig MakeWal() {
    WalConfig c;
    c.extent_offset = 0;
    c.extent_bytes = 4 * kMiB;
    c.buffer_bytes = 4 * kKiB;
    return c;
  }

  struct Record {
    std::string key, value;
    bool tombstone;
  };

  std::vector<Record> ReplayAll() {
    std::vector<Record> out;
    EXPECT_TRUE(wal_
                    .Replay([&](std::string_view k, std::string_view v,
                                bool del) {
                      out.push_back({std::string(k), std::string(v), del});
                    })
                    .ok());
    return out;
  }

  sim::VirtualClock clock_;
  hdd::HddDevice dev_;
  Wal wal_;
};

TEST_F(WalTest, EmptyReplay) { EXPECT_TRUE(ReplayAll().empty()); }

TEST_F(WalTest, BufferedRecordsReplay) {
  ASSERT_TRUE(wal_.Append("k1", "v1", false).ok());
  ASSERT_TRUE(wal_.Append("k2", "", true).ok());
  auto records = ReplayAll();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].key, "k1");
  EXPECT_EQ(records[0].value, "v1");
  EXPECT_FALSE(records[0].tombstone);
  EXPECT_TRUE(records[1].tombstone);
}

TEST_F(WalTest, AutoSyncOnBufferFull) {
  const std::string big(3 * kKiB, 'w');
  ASSERT_TRUE(wal_.Append("a", big, false).ok());
  ASSERT_TRUE(wal_.Append("b", big, false).ok());
  EXPECT_GT(dev_.stats().bytes_written, 0u);  // buffer spilled to disk
  auto records = ReplayAll();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].value.size(), big.size());
}

TEST_F(WalTest, ExplicitSyncPersists) {
  ASSERT_TRUE(wal_.Append("k", "v", false).ok());
  ASSERT_TRUE(wal_.Sync().ok());
  EXPECT_GT(dev_.stats().bytes_written, 0u);
  EXPECT_EQ(ReplayAll().size(), 1u);
}

TEST_F(WalTest, TruncateDiscards) {
  ASSERT_TRUE(wal_.Append("k", "v", false).ok());
  ASSERT_TRUE(wal_.Sync().ok());
  ASSERT_TRUE(wal_.Truncate().ok());
  EXPECT_EQ(wal_.size_bytes(), 0u);
  EXPECT_TRUE(ReplayAll().empty());
}

TEST_F(WalTest, ExtentOverflowReported) {
  WalConfig tiny;
  tiny.extent_offset = 4 * kMiB;
  tiny.extent_bytes = 64;
  Wal w(tiny, &dev_);
  ASSERT_TRUE(w.Append("k", std::string(40, 'v'), false).ok());
  EXPECT_EQ(w.Append("k2", std::string(40, 'v'), false).code(),
            StatusCode::kNoSpace);
}

TEST_F(WalTest, ReplayPreservesOrderAcrossSyncBoundary) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        wal_.Append("k" + std::to_string(i), std::string(200, 'v'), false)
            .ok());
  }
  auto records = ReplayAll();
  ASSERT_EQ(records.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(records[i].key, "k" + std::to_string(i));
  }
}

}  // namespace
}  // namespace zncache::kv
