#include <gtest/gtest.h>

#include <memory>

#include "backends/middle_region_device.h"
#include "workload/cachebench.h"

namespace zncache::workload {
namespace {

class CacheBenchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clock_ = std::make_unique<sim::VirtualClock>();
    backends::MiddleRegionDeviceConfig dc;
    dc.region_count = 48;
    dc.zns.zone_count = 20;
    dc.zns.zone_size = 256 * kKiB;
    dc.zns.zone_capacity = 256 * kKiB;
    dc.zns.max_open_zones = 6;
    dc.zns.max_active_zones = 8;
    dc.zns.store_data = false;
    dc.middle.region_size = 64 * kKiB;
    dc.middle.min_empty_zones = 2;
    device_ = std::make_unique<backends::MiddleRegionDevice>(dc, clock_.get());
    ASSERT_TRUE(device_->Init().ok());
    cache::FlashCacheConfig cc;
    cc.store_values = false;
    cache_ = std::make_unique<cache::FlashCache>(cc, device_.get(),
                                                 clock_.get());
  }

  CacheBenchConfig SmallConfig() {
    CacheBenchConfig c;
    c.ops = 20'000;
    c.warmup_ops = 5'000;
    c.key_space = 3000;
    c.value_min = 512;
    c.value_max = 4 * kKiB;
    return c;
  }

  std::unique_ptr<sim::VirtualClock> clock_;
  std::unique_ptr<backends::MiddleRegionDevice> device_;
  std::unique_ptr<cache::FlashCache> cache_;
};

TEST_F(CacheBenchTest, ValueSizesDeterministicAndBounded) {
  CacheBenchRunner runner(SmallConfig());
  for (u64 k = 0; k < 1000; ++k) {
    const u64 s1 = runner.ValueSizeFor(k);
    const u64 s2 = runner.ValueSizeFor(k);
    EXPECT_EQ(s1, s2);
    EXPECT_GE(s1, 512u);
    EXPECT_LE(s1, 4 * kKiB);
  }
}

TEST_F(CacheBenchTest, KeyNamesUnique) {
  EXPECT_NE(CacheBenchRunner::KeyName(1), CacheBenchRunner::KeyName(11));
}

TEST_F(CacheBenchTest, RunProducesSaneMetrics) {
  CacheBenchRunner runner(SmallConfig());
  auto r = runner.Run(*cache_, *clock_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->measured_ops, 20'000u);
  EXPECT_GT(r->sim_time, 0u);
  EXPECT_GT(r->ops_per_minute, 0.0);
  EXPECT_GT(r->hit_ratio, 0.3);  // zipf + refill => mostly hits
  EXPECT_LE(r->hit_ratio, 1.0);
  EXPECT_GE(r->wa_factor, 0.99);
  EXPECT_GT(r->get_latency.count(), 0u);
  EXPECT_GT(r->set_latency.count(), 0u);
}

TEST_F(CacheBenchTest, DeterministicAcrossRuns) {
  CacheBenchRunner runner(SmallConfig());
  auto r1 = runner.Run(*cache_, *clock_);
  ASSERT_TRUE(r1.ok());

  // Fresh identical setup must reproduce metrics exactly.
  SetUp();
  CacheBenchRunner runner2(SmallConfig());
  auto r2 = runner2.Run(*cache_, *clock_);
  ASSERT_TRUE(r2.ok());
  EXPECT_DOUBLE_EQ(r1->hit_ratio, r2->hit_ratio);
  EXPECT_EQ(r1->sim_time, r2->sim_time);
}

TEST_F(CacheBenchTest, SmallerCacheLowersHitRatio) {
  CacheBenchRunner runner(SmallConfig());
  auto big = runner.Run(*cache_, *clock_);
  ASSERT_TRUE(big.ok());

  // Rebuild with half the regions.
  clock_ = std::make_unique<sim::VirtualClock>();
  backends::MiddleRegionDeviceConfig dc;
  dc.region_count = 20;
  dc.zns.zone_count = 12;
  dc.zns.zone_size = 256 * kKiB;
  dc.zns.zone_capacity = 256 * kKiB;
  dc.zns.store_data = false;
  dc.middle.region_size = 64 * kKiB;
  dc.middle.min_empty_zones = 2;
  device_ = std::make_unique<backends::MiddleRegionDevice>(dc, clock_.get());
  ASSERT_TRUE(device_->Init().ok());
  cache::FlashCacheConfig cc;
  cc.store_values = false;
  cache_ = std::make_unique<cache::FlashCache>(cc, device_.get(), clock_.get());

  auto small = runner.Run(*cache_, *clock_);
  ASSERT_TRUE(small.ok());
  EXPECT_LT(small->hit_ratio, big->hit_ratio);
}

}  // namespace
}  // namespace zncache::workload
