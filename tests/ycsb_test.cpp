#include <gtest/gtest.h>

#include <memory>

#include "workload/ycsb.h"

namespace zncache::workload {
namespace {

class YcsbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clock_ = std::make_unique<sim::VirtualClock>();
    hdd::HddConfig hc;
    hc.capacity = 256 * kMiB;
    hdd_ = std::make_unique<hdd::HddDevice>(hc, clock_.get());
    kv::LsmConfig lc;
    lc.memtable_bytes = 64 * kKiB;
    lc.block_bytes = 2 * kKiB;
    lc.table_target_bytes = 128 * kKiB;
    lc.block_cache.capacity_bytes = 256 * kKiB;
    store_ = std::make_unique<kv::LsmStore>(lc, hdd_.get(), clock_.get());

    config_.record_count = 4'000;
    config_.operation_count = 3'000;
    runner_ = std::make_unique<YcsbRunner>(config_);
    ASSERT_TRUE(runner_->Load(*store_).ok());
  }

  YcsbConfig config_;
  std::unique_ptr<sim::VirtualClock> clock_;
  std::unique_ptr<hdd::HddDevice> hdd_;
  std::unique_ptr<kv::LsmStore> store_;
  std::unique_ptr<YcsbRunner> runner_;
};

TEST_F(YcsbTest, LoadPopulatesAllRecords) {
  std::string v;
  auto g = store_->Get(runner_->KeyFor(0), &v);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->found);
  g = store_->Get(runner_->KeyFor(3'999), &v);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->found);
}

TEST_F(YcsbTest, WorkloadAMix) {
  auto r = runner_->Run(YcsbWorkload::kA, *store_, *clock_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->ops, 3'000u);
  EXPECT_NEAR(static_cast<double>(r->reads) / 3'000, 0.5, 0.05);
  EXPECT_NEAR(static_cast<double>(r->updates) / 3'000, 0.5, 0.05);
  // Every read targets a loaded record.
  EXPECT_EQ(r->found, r->reads);
}

TEST_F(YcsbTest, WorkloadBReadMostly) {
  auto r = runner_->Run(YcsbWorkload::kB, *store_, *clock_);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(static_cast<double>(r->reads) / 3'000, 0.95, 0.03);
}

TEST_F(YcsbTest, WorkloadCReadOnly) {
  auto r = runner_->Run(YcsbWorkload::kC, *store_, *clock_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->reads, 3'000u);
  EXPECT_EQ(r->updates, 0u);
  EXPECT_EQ(r->inserts, 0u);
}

TEST_F(YcsbTest, WorkloadDInsertsAndReadsLatest) {
  auto r = runner_->Run(YcsbWorkload::kD, *store_, *clock_);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->inserts, 0u);
  EXPECT_EQ(r->found, r->reads);  // latest keys always exist
  // Inserted keys are retrievable afterwards.
  std::string v;
  auto g = store_->Get(runner_->KeyFor(config_.record_count), &v);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->found);
}

TEST_F(YcsbTest, WorkloadEScans) {
  auto r = runner_->Run(YcsbWorkload::kE, *store_, *clock_);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->scans, 2'500u);
  EXPECT_GT(r->inserts, 0u);
  EXPECT_EQ(r->reads, 0u);
}

TEST_F(YcsbTest, WorkloadFReadModifyWrite) {
  auto r = runner_->Run(YcsbWorkload::kF, *store_, *clock_);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->rmws, 1'000u);
  // RMW does a read before its write.
  EXPECT_GT(r->reads, r->rmws);
}

TEST_F(YcsbTest, UpdatesVisibleToLaterReads) {
  ASSERT_TRUE(runner_->Run(YcsbWorkload::kA, *store_, *clock_).ok());
  // The hottest record was almost surely updated; reads still succeed with
  // the 100-byte value shape.
  std::string v;
  auto g = store_->Get(runner_->KeyFor(0), &v);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->found);
  EXPECT_EQ(v.size(), 100u);
}

TEST_F(YcsbTest, OpsPerSecondPositive) {
  auto r = runner_->Run(YcsbWorkload::kC, *store_, *clock_);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->ops_per_sec, 0.0);
  EXPECT_GT(r->latency.count(), 0u);
}

TEST_F(YcsbTest, WorkloadNamesStable) {
  EXPECT_EQ(YcsbWorkloadName(YcsbWorkload::kA), "A (update-heavy)");
  EXPECT_EQ(YcsbWorkloadName(YcsbWorkload::kE), "E (short-ranges)");
}

}  // namespace
}  // namespace zncache::workload
