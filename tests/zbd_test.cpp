#include <gtest/gtest.h>

#include <cstring>

#include "zns/zbd.h"

namespace zncache::zns {
namespace {

class ZbdTest : public ::testing::Test {
 protected:
  ZbdTest() : dev_(Config(), &clock_), zbd_(&dev_) {}

  static ZnsConfig Config() {
    ZnsConfig c;
    c.zone_count = 8;
    c.zone_size = 128 * kKiB;
    c.zone_capacity = 96 * kKiB;  // capacity < size, as on the ZN540
    c.max_open_zones = 4;
    c.max_active_zones = 6;
    return c;
  }

  std::vector<std::byte> Bytes(size_t n, char c = 'z') {
    return std::vector<std::byte>(n, std::byte(c));
  }

  sim::VirtualClock clock_;
  ZnsDevice dev_;
  ZbdDevice zbd_;
};

TEST_F(ZbdTest, InfoMirrorsDevice) {
  const ZbdInfo info = zbd_.info();
  EXPECT_EQ(info.nr_zones, 8u);
  EXPECT_EQ(info.zone_size, 128 * kKiB);
  EXPECT_EQ(info.zone_capacity, 96 * kKiB);
  EXPECT_EQ(info.capacity, 8 * 128 * kKiB);
  EXPECT_EQ(info.max_nr_open_zones, 4u);
}

TEST_F(ZbdTest, ReportAllZones) {
  auto zones = zbd_.ReportZones(0);
  ASSERT_TRUE(zones.ok());
  ASSERT_EQ(zones->size(), 8u);
  EXPECT_EQ((*zones)[3].start, 3 * 128 * kKiB);
  EXPECT_EQ((*zones)[3].wp, 3 * 128 * kKiB);
  EXPECT_EQ((*zones)[3].cond, ZoneState::kEmpty);
  EXPECT_TRUE((*zones)[3].IsWritable());
}

TEST_F(ZbdTest, ReportRangeSelectsIntersectingZones) {
  auto zones = zbd_.ReportZones(130 * kKiB, 200 * kKiB);
  ASSERT_TRUE(zones.ok());
  // [130K, 330K) intersects zones 1 and 2.
  ASSERT_EQ(zones->size(), 2u);
  EXPECT_EQ((*zones)[0].start, 128 * kKiB);
}

TEST_F(ZbdTest, ReportBeyondDeviceFails) {
  EXPECT_FALSE(zbd_.ReportZones(10 * 128 * kKiB).ok());
}

TEST_F(ZbdTest, FlatOffsetWriteAdvancesWp) {
  const u64 base = 2 * 128 * kKiB;
  ASSERT_TRUE(zbd_.Pwrite(Bytes(4096, 'a'), base).ok());
  ASSERT_TRUE(zbd_.Pwrite(Bytes(4096, 'b'), base + 4096).ok());
  auto zones = zbd_.ReportZones(base, 1);
  ASSERT_TRUE(zones.ok());
  EXPECT_EQ((*zones)[0].wp, base + 8192);
}

TEST_F(ZbdTest, WriteNotAtWpRejected) {
  EXPECT_FALSE(zbd_.Pwrite(Bytes(512), 4096).ok());
}

TEST_F(ZbdTest, CrossZoneIoRejected) {
  EXPECT_FALSE(zbd_.Pwrite(Bytes(8 * kKiB), 124 * kKiB).ok());
  std::vector<std::byte> out(8 * kKiB);
  EXPECT_FALSE(zbd_.Pread(out, 124 * kKiB).ok());
}

TEST_F(ZbdTest, ReadBackThroughFlatOffsets) {
  auto data = Bytes(4096, 'q');
  ASSERT_TRUE(zbd_.Pwrite(data, 0).ok());
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(zbd_.Pread(out, 0).ok());
  EXPECT_EQ(std::memcmp(out.data(), data.data(), 4096), 0);
}

TEST_F(ZbdTest, ResetOperation) {
  ASSERT_TRUE(zbd_.Pwrite(Bytes(4096), 0).ok());
  ASSERT_TRUE(zbd_.ZonesOperation(ZbdOp::kReset, 0, 1).ok());
  auto zones = zbd_.ReportZones(0, 1);
  ASSERT_TRUE(zones.ok());
  EXPECT_EQ((*zones)[0].cond, ZoneState::kEmpty);
  EXPECT_EQ((*zones)[0].wp, 0u);
}

TEST_F(ZbdTest, RangeResetHitsEveryZone) {
  for (u64 z = 0; z < 3; ++z) {
    ASSERT_TRUE(zbd_.Pwrite(Bytes(512), z * 128 * kKiB).ok());
  }
  ASSERT_TRUE(
      zbd_.ZonesOperation(ZbdOp::kReset, 0, 3 * 128 * kKiB).ok());
  auto zones = zbd_.ReportZones(0);
  ASSERT_TRUE(zones.ok());
  for (u64 z = 0; z < 3; ++z) {
    EXPECT_EQ((*zones)[z].cond, ZoneState::kEmpty) << z;
  }
}

TEST_F(ZbdTest, FinishAndOpenOperations) {
  ASSERT_TRUE(zbd_.ZonesOperation(ZbdOp::kOpen, 0, 1).ok());
  auto zones = zbd_.ReportZones(0, 1);
  EXPECT_EQ((*zones)[0].cond, ZoneState::kExplicitOpen);
  ASSERT_TRUE(zbd_.ZonesOperation(ZbdOp::kFinish, 0, 1).ok());
  zones = zbd_.ReportZones(0, 1);
  EXPECT_EQ((*zones)[0].cond, ZoneState::kFull);
  EXPECT_FALSE((*zones)[0].IsWritable());
}

TEST_F(ZbdTest, WpCapsAtCapacityNotSize) {
  // Fill a zone to capacity (96 KiB < 128 KiB size).
  ASSERT_TRUE(zbd_.Pwrite(Bytes(96 * kKiB), 0).ok());
  auto zones = zbd_.ReportZones(0, 1);
  EXPECT_EQ((*zones)[0].cond, ZoneState::kFull);
  EXPECT_EQ((*zones)[0].wp, 96 * kKiB);
  // Address space beyond capacity is unwritable.
  EXPECT_FALSE(zbd_.Pwrite(Bytes(512), 96 * kKiB).ok());
}

}  // namespace
}  // namespace zncache::zns
