#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "zns/zns_device.h"

namespace zncache::zns {
namespace {

std::vector<std::byte> Bytes(size_t n, char fill = 'a') {
  return std::vector<std::byte>(n, std::byte(fill));
}

ZnsConfig SmallConfig() {
  ZnsConfig c;
  c.zone_count = 8;
  c.zone_size = 64 * kKiB;
  c.zone_capacity = 64 * kKiB;
  c.max_open_zones = 3;
  c.max_active_zones = 4;
  return c;
}

class ZnsDeviceTest : public ::testing::Test {
 protected:
  sim::VirtualClock clock_;
  ZnsDevice dev_{SmallConfig(), &clock_};
};

TEST_F(ZnsDeviceTest, InitialStateAllEmpty) {
  for (u64 z = 0; z < dev_.zone_count(); ++z) {
    EXPECT_EQ(dev_.GetZoneInfo(z).state, ZoneState::kEmpty);
    EXPECT_EQ(dev_.GetZoneInfo(z).write_pointer, 0u);
  }
  EXPECT_EQ(dev_.EmptyZoneCount(), 8u);
  EXPECT_EQ(dev_.open_zones(), 0u);
}

TEST_F(ZnsDeviceTest, WriteAtWritePointerSucceeds) {
  auto data = Bytes(4096);
  auto r = dev_.Write(0, 0, data);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->latency, 0u);
  EXPECT_EQ(dev_.GetZoneInfo(0).write_pointer, 4096u);
  EXPECT_EQ(dev_.GetZoneInfo(0).state, ZoneState::kImplicitOpen);
}

TEST_F(ZnsDeviceTest, WriteNotAtWritePointerFails) {
  auto data = Bytes(4096);
  auto r = dev_.Write(0, 4096, data);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ZnsDeviceTest, SequentialWritesAdvancePointer) {
  auto data = Bytes(4096);
  ASSERT_TRUE(dev_.Write(0, 0, data).ok());
  ASSERT_TRUE(dev_.Write(0, 4096, data).ok());
  EXPECT_EQ(dev_.GetZoneInfo(0).write_pointer, 8192u);
}

TEST_F(ZnsDeviceTest, ReadBackMatches) {
  std::vector<std::byte> data(4096);
  for (size_t i = 0; i < data.size(); ++i) data[i] = std::byte(i & 0xFF);
  ASSERT_TRUE(dev_.Write(2, 0, data).ok());
  std::vector<std::byte> out(4096);
  auto r = dev_.Read(2, 0, out);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(std::memcmp(data.data(), out.data(), data.size()), 0);
}

TEST_F(ZnsDeviceTest, ReadBeyondWritePointerFails) {
  ASSERT_TRUE(dev_.Write(0, 0, Bytes(4096)).ok());
  std::vector<std::byte> out(4096);
  auto r = dev_.Read(0, 4096, std::span<std::byte>(out));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST_F(ZnsDeviceTest, PartialReadAtOffset) {
  std::vector<std::byte> data(8192);
  for (size_t i = 0; i < data.size(); ++i) data[i] = std::byte(i % 251);
  ASSERT_TRUE(dev_.Write(0, 0, data).ok());
  std::vector<std::byte> out(100);
  ASSERT_TRUE(dev_.Read(0, 4000, out).ok());
  EXPECT_EQ(std::memcmp(data.data() + 4000, out.data(), 100), 0);
}

TEST_F(ZnsDeviceTest, WriteBeyondCapacityFails) {
  auto cap = dev_.zone_capacity();
  auto big = Bytes(cap + 1);
  auto r = dev_.Write(0, 0, big);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNoSpace);
}

TEST_F(ZnsDeviceTest, ZoneBecomesFullAtCapacity) {
  ASSERT_TRUE(dev_.Write(0, 0, Bytes(dev_.zone_capacity())).ok());
  EXPECT_EQ(dev_.GetZoneInfo(0).state, ZoneState::kFull);
  EXPECT_EQ(dev_.open_zones(), 0u);
  // Further writes fail.
  EXPECT_FALSE(dev_.Write(0, dev_.zone_capacity(), Bytes(1)).ok());
}

TEST_F(ZnsDeviceTest, ResetRewindsAndAllowsRewrite) {
  ASSERT_TRUE(dev_.Write(0, 0, Bytes(dev_.zone_capacity())).ok());
  ASSERT_TRUE(dev_.Reset(0).ok());
  EXPECT_EQ(dev_.GetZoneInfo(0).state, ZoneState::kEmpty);
  EXPECT_EQ(dev_.GetZoneInfo(0).write_pointer, 0u);
  EXPECT_EQ(dev_.GetZoneInfo(0).reset_count, 1u);
  EXPECT_TRUE(dev_.Write(0, 0, Bytes(512)).ok());
}

TEST_F(ZnsDeviceTest, FinishJumpsPointerToEnd) {
  ASSERT_TRUE(dev_.Write(0, 0, Bytes(4096)).ok());
  ASSERT_TRUE(dev_.Finish(0).ok());
  EXPECT_EQ(dev_.GetZoneInfo(0).state, ZoneState::kFull);
  EXPECT_EQ(dev_.GetZoneInfo(0).write_pointer, dev_.zone_capacity());
}

TEST_F(ZnsDeviceTest, FinishEmptyZoneAllowed) {
  ASSERT_TRUE(dev_.Finish(3).ok());
  EXPECT_EQ(dev_.GetZoneInfo(3).state, ZoneState::kFull);
}

TEST_F(ZnsDeviceTest, FinishedZoneReadableBelowOldPointer) {
  std::vector<std::byte> data(4096, std::byte{0x5A});
  ASSERT_TRUE(dev_.Write(0, 0, data).ok());
  ASSERT_TRUE(dev_.Finish(0).ok());
  std::vector<std::byte> out(4096);
  EXPECT_TRUE(dev_.Read(0, 0, out).ok());
}

TEST_F(ZnsDeviceTest, AppendReturnsOffset) {
  auto a1 = dev_.Append(1, Bytes(1000));
  ASSERT_TRUE(a1.ok());
  EXPECT_EQ(a1->offset, 0u);
  auto a2 = dev_.Append(1, Bytes(1000));
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a2->offset, 1000u);
  EXPECT_EQ(dev_.stats().append_ops, 2u);
}

TEST_F(ZnsDeviceTest, MaxOpenZonesEnforced) {
  ASSERT_TRUE(dev_.Write(0, 0, Bytes(512)).ok());
  ASSERT_TRUE(dev_.Write(1, 0, Bytes(512)).ok());
  ASSERT_TRUE(dev_.Write(2, 0, Bytes(512)).ok());
  auto r = dev_.Write(3, 0, Bytes(512));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

TEST_F(ZnsDeviceTest, CloseFreesOpenSlot) {
  ASSERT_TRUE(dev_.Write(0, 0, Bytes(512)).ok());
  ASSERT_TRUE(dev_.Write(1, 0, Bytes(512)).ok());
  ASSERT_TRUE(dev_.Write(2, 0, Bytes(512)).ok());
  ASSERT_TRUE(dev_.Close(0).ok());
  EXPECT_EQ(dev_.GetZoneInfo(0).state, ZoneState::kClosed);
  EXPECT_TRUE(dev_.Write(3, 0, Bytes(512)).ok());
}

TEST_F(ZnsDeviceTest, MaxActiveZonesEnforced) {
  // 4 active max: open 3, close them (still active), then a 4th and 5th.
  for (u64 z = 0; z < 3; ++z) {
    ASSERT_TRUE(dev_.Write(z, 0, Bytes(512)).ok());
    ASSERT_TRUE(dev_.Close(z).ok());
  }
  ASSERT_TRUE(dev_.Write(3, 0, Bytes(512)).ok());
  auto r = dev_.Write(4, 0, Bytes(512));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

TEST_F(ZnsDeviceTest, ReopenClosedZoneContinuesAtPointer) {
  ASSERT_TRUE(dev_.Write(0, 0, Bytes(1024)).ok());
  ASSERT_TRUE(dev_.Close(0).ok());
  ASSERT_TRUE(dev_.Write(0, 1024, Bytes(1024)).ok());
  EXPECT_EQ(dev_.GetZoneInfo(0).write_pointer, 2048u);
}

TEST_F(ZnsDeviceTest, ExplicitOpenAndLimits) {
  ASSERT_TRUE(dev_.Open(0).ok());
  ASSERT_TRUE(dev_.Open(1).ok());
  ASSERT_TRUE(dev_.Open(2).ok());
  EXPECT_EQ(dev_.open_zones(), 3u);
  auto r = dev_.Open(3);
  EXPECT_EQ(r.code(), StatusCode::kUnavailable);
}

TEST_F(ZnsDeviceTest, InvalidZoneIdRejected) {
  EXPECT_EQ(dev_.Reset(99).code(), StatusCode::kOutOfRange);
  EXPECT_FALSE(dev_.Write(99, 0, Bytes(1)).ok());
  std::vector<std::byte> out(1);
  EXPECT_FALSE(dev_.Read(99, 0, out).ok());
}

TEST_F(ZnsDeviceTest, EmptyIoRejected) {
  std::vector<std::byte> empty;
  EXPECT_FALSE(dev_.Write(0, 0, empty).ok());
  EXPECT_FALSE(dev_.Read(0, 0, std::span<std::byte>()).ok());
}

TEST_F(ZnsDeviceTest, WriteAmplificationAlwaysOne) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(dev_.Write(0, i * 4096, Bytes(4096)).ok());
  }
  ASSERT_TRUE(dev_.Reset(0).ok());
  ASSERT_TRUE(dev_.Write(0, 0, Bytes(4096)).ok());
  EXPECT_DOUBLE_EQ(dev_.stats().WriteAmplification(), 1.0);
}

TEST_F(ZnsDeviceTest, StatsTrackOps) {
  ASSERT_TRUE(dev_.Write(0, 0, Bytes(100)).ok());
  std::vector<std::byte> out(100);
  ASSERT_TRUE(dev_.Read(0, 0, out).ok());
  ASSERT_TRUE(dev_.Reset(0).ok());
  ASSERT_TRUE(dev_.Finish(1).ok());
  const ZnsStats& s = dev_.stats();
  EXPECT_EQ(s.write_ops, 1u);
  EXPECT_EQ(s.read_ops, 1u);
  EXPECT_EQ(s.zone_resets, 1u);
  EXPECT_EQ(s.zone_finishes, 1u);
  EXPECT_EQ(s.host_bytes_written, 100u);
  EXPECT_EQ(s.bytes_read, 100u);
}

TEST_F(ZnsDeviceTest, BackgroundWriteDoesNotAdvanceClock) {
  const SimNanos before = clock_.Now();
  auto r = dev_.Write(0, 0, Bytes(4096), sim::IoMode::kBackground);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->latency, 0u);
  EXPECT_GT(r->completion, before);
  EXPECT_EQ(clock_.Now(), before);
}

TEST_F(ZnsDeviceTest, ForegroundQueuesBehindBackground) {
  ASSERT_TRUE(dev_.Write(0, 0, Bytes(1 * kMiB / 16), sim::IoMode::kBackground).ok());
  std::vector<std::byte> out(512);
  auto r = dev_.Read(0, 0, out);
  ASSERT_TRUE(r.ok());
  // Latency includes waiting for the background write to finish.
  EXPECT_GT(r->latency, dev_.config().timing.read.Cost(512));
}

TEST_F(ZnsDeviceTest, ZoneCapacityLessThanSize) {
  ZnsConfig c = SmallConfig();
  c.zone_capacity = 48 * kKiB;  // < zone_size
  sim::VirtualClock clk;
  ZnsDevice d(c, &clk);
  ASSERT_TRUE(d.Write(0, 0, Bytes(48 * kKiB)).ok());
  EXPECT_EQ(d.GetZoneInfo(0).state, ZoneState::kFull);
  EXPECT_EQ(d.usable_bytes(), 8 * 48 * kKiB);
}

TEST_F(ZnsDeviceTest, NoDataStorageModeReadsZeros) {
  ZnsConfig c = SmallConfig();
  c.store_data = false;
  sim::VirtualClock clk;
  ZnsDevice d(c, &clk);
  ASSERT_TRUE(d.Write(0, 0, Bytes(4096, 'x')).ok());
  std::vector<std::byte> out(4096, std::byte{0xFF});
  ASSERT_TRUE(d.Read(0, 0, out).ok());
  EXPECT_EQ(out[0], std::byte{0});
}

TEST_F(ZnsDeviceTest, ResetAllZonesRestoresEmptyCount) {
  for (u64 z = 0; z < 3; ++z) ASSERT_TRUE(dev_.Write(z, 0, Bytes(64)).ok());
  EXPECT_EQ(dev_.EmptyZoneCount(), 5u);
  for (u64 z = 0; z < 3; ++z) ASSERT_TRUE(dev_.Reset(z).ok());
  EXPECT_EQ(dev_.EmptyZoneCount(), 8u);
}

TEST_F(ZnsDeviceTest, ZoneStateNames) {
  EXPECT_EQ(ZoneStateName(ZoneState::kEmpty), "EMPTY");
  EXPECT_EQ(ZoneStateName(ZoneState::kFull), "FULL");
  EXPECT_EQ(ZoneStateName(ZoneState::kImplicitOpen), "IMPLICIT_OPEN");
}

}  // namespace
}  // namespace zncache::zns
