// Zone-append write path in the middle layer: the device assigns offsets
// and the mapping learns placement from completions.
#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "middle/zone_translation_layer.h"

namespace zncache::middle {
namespace {

class ZoneAppendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    zns::ZnsConfig zc;
    zc.zone_count = 12;
    zc.zone_size = 256 * kKiB;
    zc.zone_capacity = 256 * kKiB;
    zc.max_open_zones = 6;
    zc.max_active_zones = 8;
    dev_ = std::make_unique<zns::ZnsDevice>(zc, &clock_);

    MiddleLayerConfig mc;
    mc.region_size = 64 * kKiB;
    mc.region_slots = 30;
    mc.open_zones = 2;
    mc.min_empty_zones = 2;
    mc.use_zone_append = true;
    layer_ = std::make_unique<ZoneTranslationLayer>(mc, dev_.get());
    ASSERT_TRUE(layer_->ValidateConfig().ok());
  }

  Status Write(u64 rid, char fill) {
    std::vector<std::byte> data(64 * kKiB, std::byte(fill));
    auto r = layer_->WriteRegion(rid, data, sim::IoMode::kForeground);
    return r.ok() ? Status::Ok() : r.status();
  }

  sim::VirtualClock clock_;
  std::unique_ptr<zns::ZnsDevice> dev_;
  std::unique_ptr<ZoneTranslationLayer> layer_;
};

TEST_F(ZoneAppendTest, WritesGoThroughAppendCommand) {
  for (u64 r = 0; r < 8; ++r) ASSERT_TRUE(Write(r, 'a').ok());
  EXPECT_EQ(dev_->stats().append_ops, 8u);
  EXPECT_EQ(dev_->stats().write_ops, 0u);
}

TEST_F(ZoneAppendTest, MappingLearnsAssignedOffsets) {
  ASSERT_TRUE(Write(0, 'x').ok());
  ASSERT_TRUE(Write(1, 'y').ok());
  std::vector<std::byte> out(8);
  ASSERT_TRUE(layer_->ReadRegion(0, 0, out).ok());
  EXPECT_EQ(out[0], std::byte('x'));
  ASSERT_TRUE(layer_->ReadRegion(1, 0, out).ok());
  EXPECT_EQ(out[0], std::byte('y'));
}

TEST_F(ZoneAppendTest, ChurnWithGcStaysCorrect) {
  Rng rng(401);
  std::vector<int> stamp(30, -1);
  for (int i = 0; i < 400; ++i) {
    const u64 rid = rng.Uniform(30);
    const char fill = static_cast<char>('a' + i % 26);
    ASSERT_TRUE(Write(rid, fill).ok());
    stamp[rid] = fill;
  }
  std::vector<std::byte> out(16);
  for (u64 rid = 0; rid < 30; ++rid) {
    if (stamp[rid] < 0) continue;
    ASSERT_TRUE(layer_->ReadRegion(rid, 0, out).ok()) << rid;
    EXPECT_EQ(out[0], std::byte(static_cast<char>(stamp[rid])));
  }
  EXPECT_GT(layer_->stats().gc_runs, 0u);
}

TEST_F(ZoneAppendTest, AppendAndWritePathsAgree) {
  // The same op stream through both paths must produce identical reads.
  zns::ZnsConfig zc = dev_->config();
  sim::VirtualClock clock2;
  zns::ZnsDevice dev2(zc, &clock2);
  MiddleLayerConfig mc = layer_->config();
  mc.use_zone_append = false;
  ZoneTranslationLayer plain(mc, &dev2);

  Rng rng(402);
  for (int i = 0; i < 150; ++i) {
    const u64 rid = rng.Uniform(30);
    const char fill = static_cast<char>('a' + i % 26);
    std::vector<std::byte> data(64 * kKiB, std::byte(fill));
    ASSERT_TRUE(
        layer_->WriteRegion(rid, data, sim::IoMode::kForeground).ok());
    ASSERT_TRUE(plain.WriteRegion(rid, data, sim::IoMode::kForeground).ok());
  }
  std::vector<std::byte> a(32), b(32);
  for (u64 rid = 0; rid < 30; ++rid) {
    const bool has_a = layer_->ReadRegion(rid, 0, a).ok();
    const bool has_b = plain.ReadRegion(rid, 0, b).ok();
    ASSERT_EQ(has_a, has_b) << rid;
    if (has_a) {
      EXPECT_EQ(a[0], b[0]) << rid;
    }
  }
}

}  // namespace
}  // namespace zncache::middle
